package analysis

import "strings"

// modulePath is the import-path prefix of this repository's packages.
const modulePath = "dstress"

// protocolPkgs are the packages that move protocol messages: everything
// that names a wire tag or holds a share in flight. tagpath and errflow
// run here.
var protocolPkgs = map[string]bool{
	"internal/ot":       true,
	"internal/gmw":      true,
	"internal/transfer": true,
	"internal/vertex":   true,
	"internal/cluster":  true,
}

// ctxflowPkgs extends the protocol set with every library package on a
// Recv path or holding a deployment lifetime. Not listed (and so not
// checked): package main and examples (they own their root context),
// tests, and the leaf packages with no transport access (finnet, dp, obs,
// cost, experiments, networktest — the latter two mint Background by
// design for offline measurement harnesses).
var ctxflowPkgs = map[string]bool{
	"":                      true, // the dstress facade package itself
	"internal/ot":           true,
	"internal/gmw":          true,
	"internal/transfer":     true,
	"internal/vertex":       true,
	"internal/cluster":      true,
	"internal/serve":        true,
	"internal/network":      true,
	"internal/tcpnet":       true,
	"internal/trustedparty": true,
	"internal/secretshare":  true,
	"internal/elgamal":      true,
	"internal/group":        true,
}

// strictRandPkgs hold secret state or randomness whose predictability
// breaks the protocol; math/rand is forbidden there outright and the
// //dstress:rand-ok escape is NOT honored.
var strictRandPkgs = map[string]bool{
	"internal/ot":           true,
	"internal/gmw":          true,
	"internal/elgamal":      true,
	"internal/secretshare":  true,
	"internal/group":        true,
	"internal/transfer":     true,
	"internal/trustedparty": true,
}

// relPath strips the module prefix: "dstress/internal/ot" -> "internal/ot",
// "dstress" -> "". Paths outside the module come back unchanged.
func relPath(pkgPath string) string {
	if pkgPath == modulePath {
		return ""
	}
	return strings.TrimPrefix(pkgPath, modulePath+"/")
}

// InScope reports whether the analyzer applies to the package. Analyzers
// themselves are scope-free; the driver (and the fixture harness, via its
// path override) makes this decision so one table governs the whole tool.
func InScope(a *Analyzer, pkgPath, pkgName string) bool {
	rel := relPath(pkgPath)
	switch a.Name {
	case "tagpath", "errflow":
		return protocolPkgs[rel]
	case "ctxflow":
		return pkgName != "main" && ctxflowPkgs[rel]
	case "securerand":
		// Everywhere: the escape hatch (outside strictRandPkgs) is the
		// annotation, not the scope table.
		return pkgName != "main"
	}
	return false
}
