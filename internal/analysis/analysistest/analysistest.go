// Package analysistest runs an analyzer over a fixture directory and
// checks its findings against `// want` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on this repo's stdlib-only
// framework.
//
// A fixture is a directory of Go files forming one package. A line that
// should produce a finding carries a trailing comment of the form
//
//	// want `regexp`
//
// and the harness fails the test on any unmatched expectation (the
// analyzer missed a seeded violation) or unexpected diagnostic (the
// analyzer over-reports).
package analysistest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"dstress/internal/analysis"
)

var wantRE = regexp.MustCompile("want `([^`]+)`")

// Run loads dir as a package named asPkgPath (so scope-sensitive checks
// see the impersonated real package) and applies the analyzer.
func Run(t *testing.T, dir string, a *analysis.Analyzer, asPkgPath string) {
	t.Helper()
	pkg, err := analysis.LoadDir(dir, asPkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}

	// Collect expectations: file:line -> pending regexps.
	type expect struct {
		re   *regexp.Regexp
		used bool
	}
	expects := map[string][]*expect{}
	key := func(file string, line int) string {
		// Findings and comments both carry absolute paths from the same
		// FileSet, so the raw name is a stable key.
		return file + ":" + strconv.Itoa(line)
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", m[1], err)
					}
					pos := pkg.Fset.Position(c.Pos())
					k := key(pos.Filename, pos.Line)
					expects[k] = append(expects[k], &expect{re: re})
				}
			}
		}
	}

	diags, err := analysis.Run(a, pkg, asPkgPath)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	for _, d := range diags {
		k := key(d.Pos.Filename, d.Pos.Line)
		matched := false
		for _, e := range expects[k] {
			if !e.used && e.re.MatchString(d.Message) {
				e.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for k, es := range expects {
		for _, e := range es {
			if !e.used {
				t.Errorf("%s: expected finding matching %q, got none", shorten(k), e.re)
			}
		}
	}
}

func shorten(k string) string {
	if i := strings.LastIndex(k, "/"); i >= 0 {
		return k[i+1:]
	}
	return k
}
