// Package analysis is a small static-analysis framework plus the DStress
// invariant checkers that run on it (see cmd/dstress-vet). The API mirrors
// golang.org/x/tools/go/analysis — Analyzer, Pass, Reportf — so the
// checkers could move onto the real framework wholesale, but it is built
// purely on the standard library: the container this repo grows in has no
// module proxy, so x/tools cannot be vendored. Packages are loaded via
// `go list -export` and type-checked against compiler export data, which
// works fully offline (see load.go).
//
// The four analyzers encode protocol invariants that code review keeps
// re-litigating:
//
//   - tagpath: protocol-message tags must derive from network.Tag, the
//     query-root helper, so concurrent queries stay in disjoint tag
//     namespaces and OT seed derivation (PRF keyed by tag) never collides.
//   - ctxflow: anything on a Recv path takes a context.Context and does
//     not mint context.Background/TODO mid-library, so query cancellation
//     reaches every blocking receive.
//   - securerand: math/rand never appears in the crypto packages.
//   - errflow: protocol packages neither discard errors into `_` nor
//     panic on recoverable failures.
//
// A finding that is intentional is silenced with a line comment on the
// offending line (or the line above): //dstress:tag-ok, //dstress:ctx-ok,
// //dstress:rand-ok, //dstress:err-ok, //dstress:panic-ok — ideally with a
// reason after the marker. securerand ignores the escape inside the
// hard-forbidden crypto packages (see scope.go).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command line.
	Name string
	// Doc is the one-paragraph description shown by `dstress-vet -help`.
	Doc string
	// Run performs the analysis on one package and reports findings
	// through the pass.
	Run func(*Pass) error
}

// A Pass connects an Analyzer to one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// PkgPath is the import path scope decisions key on. It normally
	// equals Pkg.Path(); fixture tests override it so a testdata package
	// can stand in for a real one (see the analysistest package).
	PkgPath string

	report func(Diagnostic)
	// annotations[filename][line] holds the dstress: markers on that line.
	annotations map[string]map[int][]string
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Annotated reports whether the line holding pos carries the
// //dstress:<marker> escape — as a trailing comment on the line itself, or
// as a standalone comment on the line immediately above. A trailing escape
// on the previous line deliberately does NOT leak downward: it silences
// only the line it sits on.
func (p *Pass) Annotated(pos token.Pos, marker string) bool {
	if p.annotations == nil {
		p.annotations = map[string]map[int][]string{}
		for _, f := range p.Files {
			tf := p.Fset.File(f.Pos())
			if tf == nil {
				continue
			}
			lines := p.annotations[tf.Name()]
			if lines == nil {
				lines = map[int][]string{}
				p.annotations[tf.Name()] = lines
			}
			src, _ := os.ReadFile(tf.Name())
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					markers := parseMarkers(c.Text)
					if len(markers) == 0 {
						continue
					}
					line := p.Fset.Position(c.Pos()).Line
					lines[line] = append(lines[line], markers...)
					if commentStartsLine(tf, src, c, line) {
						lines[line+1] = append(lines[line+1], markers...)
					}
				}
			}
		}
	}
	where := p.Fset.Position(pos)
	for _, m := range p.annotations[where.Filename][where.Line] {
		if m == marker {
			return true
		}
	}
	return false
}

// commentStartsLine reports whether only whitespace precedes the comment
// on its source line (a standalone comment, whose escape covers the next
// line, as opposed to a trailing comment covering only its own).
func commentStartsLine(tf *token.File, src []byte, c *ast.Comment, line int) bool {
	if src == nil {
		return false
	}
	start := tf.Offset(tf.LineStart(line))
	off := tf.Offset(c.Pos())
	if start < 0 || off > len(src) || start > off {
		return false
	}
	return strings.TrimSpace(string(src[start:off])) == ""
}

// parseMarkers extracts dstress: markers from one comment's text, e.g.
// "//dstress:panic-ok — fixed key size" yields ["panic-ok"].
func parseMarkers(text string) []string {
	var out []string
	for rest := text; ; {
		i := strings.Index(rest, "dstress:")
		if i < 0 {
			return out
		}
		rest = rest[i+len("dstress:"):]
		end := strings.IndexFunc(rest, func(r rune) bool {
			return !(r == '-' || r >= 'a' && r <= 'z' || r >= '0' && r <= '9')
		})
		if end < 0 {
			end = len(rest)
		}
		if end > 0 {
			out = append(out, rest[:end])
		}
	}
}

// walkWithStack visits every node under root, passing the path of ancestor
// nodes (outermost first, not including n itself). Returning false prunes
// the subtree.
func walkWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		keep := fn(n, stack)
		if keep {
			stack = append(stack, n)
		}
		return keep
	})
}

// calleeFunc resolves the static *types.Func a call dispatches to, or nil
// for builtins, conversions and dynamic calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isErrorType reports whether a value of type t carries an error: the
// error interface itself or any concrete type implementing it.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errType) || types.Implements(types.NewPointer(t), errType)
}
