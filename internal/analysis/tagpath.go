package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// TagPath enforces the tag discipline that keeps concurrent queries in
// disjoint namespaces.
//
// Every protocol message travels under a hierarchical tag rooted at the
// query id ("q/7/blk/3/ot/1/2/..."), and the OT substrate derives its PRF
// pad streams from those same tags. A hand-built tag — fmt.Sprintf, string
// concatenation — can silently escape the query's namespace, cross-talk
// with another in-flight query, or collide two sessions onto one pad
// stream. So in protocol packages:
//
//  1. the tag argument of a transport Send/Recv/Exchange must be a
//     network.Tag/TagPrefix/QueryRoot call, a variable holding one, or a
//     '/'-free literal (a fixed root like "setup" is namespace-safe);
//  2. no other expression may fabricate a '/'-separated path string,
//     except as a direct argument to a diagnostic sink (span names, error
//     text, logging) where the string never reaches the wire.
//
// //dstress:tag-ok silences either check on a line.
var TagPath = &Analyzer{
	Name: "tagpath",
	Doc:  "protocol-message tags must derive from network.Tag, not ad-hoc formatting",
	Run:  runTagPath,
}

// tagBuilders are the sanctioned tag constructors (matched by name: the
// repo has exactly one Tag helper family, in internal/network).
var tagBuilders = map[string]bool{"Tag": true, "TagPrefix": true, "QueryRoot": true}

// diagSinks are method names (on any receiver) that take strings never
// becoming wire tags: span/trace names and error text.
var diagSinks = map[string]bool{
	"Span": true, "SetQuery": true, // obs.Trace
	"Errorf": true, "New": true, // fmt / errors
}

func runTagPath(pass *Pass) error {
	for _, f := range pass.Files {
		walkWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if ok {
				checkTransportTag(pass, call)
			}
			checkFabricatedPath(pass, n, stack)
			return true
		})
	}
	return nil
}

// checkTransportTag validates the tag argument of Send/Recv/Exchange calls.
func checkTransportTag(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	name := fn.Name()
	if name != "Send" && name != "Recv" && name != "Exchange" {
		return
	}
	idx := tagParamIndex(fn)
	if idx < 0 || idx >= len(call.Args) {
		return
	}
	arg := ast.Unparen(call.Args[idx])
	if tagExprOK(arg) || pass.Annotated(arg.Pos(), "tag-ok") {
		return
	}
	pass.Reportf(arg.Pos(), "tag argument of %s must derive from network.Tag (or a variable holding one), not %s", name, describeExpr(arg))
}

// tagParamIndex finds the parameter named "tag" (of type string) in the
// callee's signature, or -1.
func tagParamIndex(fn *types.Func) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if p.Name() == "tag" {
			if b, ok := p.Type().Underlying().(*types.Basic); ok && b.Kind() == types.String {
				return i
			}
		}
	}
	return -1
}

// tagExprOK reports whether the expression is a sanctioned tag source.
func tagExprOK(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		switch fun := ast.Unparen(e.Fun).(type) {
		case *ast.Ident:
			return tagBuilders[fun.Name]
		case *ast.SelectorExpr:
			return tagBuilders[fun.Sel.Name]
		}
		return false
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		// A variable, field or element holding an already-derived tag.
		return true
	case *ast.BasicLit:
		s, err := strconv.Unquote(e.Value)
		return err == nil && !strings.Contains(s, "/")
	}
	return false
}

// checkFabricatedPath flags expressions that fabricate a '/'-separated
// path string in a protocol package: Sprintf/Sprint with '/' in the format
// and '+'-concatenation involving a '/' literal.
func checkFabricatedPath(pass *Pass, n ast.Node, stack []ast.Node) {
	var lit string
	switch n := n.(type) {
	case *ast.CallExpr:
		fn := calleeFunc(pass.TypesInfo, n)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" ||
			(fn.Name() != "Sprintf" && fn.Name() != "Sprint") || len(n.Args) == 0 {
			return
		}
		bl, ok := ast.Unparen(n.Args[0]).(*ast.BasicLit)
		if !ok || bl.Kind != token.STRING {
			return
		}
		s, err := strconv.Unquote(bl.Value)
		if err != nil || !strings.Contains(s, "/") {
			return
		}
		lit = s
	case *ast.BinaryExpr:
		if n.Op != token.ADD {
			return
		}
		// Only the outermost + of a concat chain reports.
		if parent, ok := top(stack).(*ast.BinaryExpr); ok && parent.Op == token.ADD {
			return
		}
		s, ok := slashLiteralInConcat(n)
		if !ok {
			return
		}
		lit = s
	default:
		return
	}
	if underDiagSink(pass, stack) || underTransportTag(pass, stack) {
		// Diagnostic strings never hit the wire; transport tag arguments
		// are checkTransportTag's finding, not a duplicate one here.
		return
	}
	if pass.Annotated(n.Pos(), "tag-ok") {
		return
	}
	pass.Reportf(n.Pos(), "path-like string %q built ad-hoc in a protocol package; derive tags via network.Tag (or annotate non-tag uses with //dstress:tag-ok)", lit)
}

// slashLiteralInConcat reports whether a string '+' chain contains a
// literal with '/'.
func slashLiteralInConcat(e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.BinaryExpr:
		if e.Op != token.ADD {
			return "", false
		}
		if s, ok := slashLiteralInConcat(e.X); ok {
			return s, true
		}
		return slashLiteralInConcat(e.Y)
	case *ast.BasicLit:
		if e.Kind != token.STRING {
			return "", false
		}
		s, err := strconv.Unquote(e.Value)
		if err == nil && strings.Contains(s, "/") {
			return s, true
		}
	}
	return "", false
}

// underDiagSink reports whether some enclosing call is a diagnostic sink
// (span names, error construction, panics, logging).
func underDiagSink(pass *Pass, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		call, ok := stack[i].(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			return true
		}
		if fn := calleeFunc(pass.TypesInfo, call); fn != nil && sinkFunc(fn) {
			return true
		}
	}
	return false
}

// sinkFunc reports whether the callee only consumes its strings for
// diagnostics.
func sinkFunc(fn *types.Func) bool {
	if pkg := fn.Pkg(); pkg != nil {
		switch pkg.Path() {
		case "fmt":
			return fn.Name() == "Errorf" // Sprintf is NOT a sink: its result flows onward
		case "errors", "log/slog", "log":
			return true
		}
		if strings.HasSuffix(pkg.Path(), "internal/obs") {
			return true
		}
	}
	return diagSinks[fn.Name()]
}

// underTransportTag reports whether the innermost enclosing call is a
// transport Send/Recv/Exchange (whose tag argument checkTransportTag owns).
func underTransportTag(pass *Pass, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if call, ok := stack[i].(*ast.CallExpr); ok {
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil {
				return false
			}
			name := fn.Name()
			return (name == "Send" || name == "Recv" || name == "Exchange") && tagParamIndex(fn) >= 0
		}
	}
	return false
}

func top(stack []ast.Node) ast.Node {
	if len(stack) == 0 {
		return nil
	}
	return stack[len(stack)-1]
}

func describeExpr(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.CallExpr:
		if fn, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			return "a " + fn.Sel.Name + " call"
		}
		if fn, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			return "a " + fn.Name + " call"
		}
		return "a function call"
	case *ast.BinaryExpr:
		return "string concatenation"
	case *ast.BasicLit:
		return "a '/'-separated literal"
	}
	return "an ad-hoc expression"
}
