package analysis

import "strconv"

// SecureRand forbids math/rand where randomness must be unpredictable.
//
// Every secret in the system — OT seeds and pads, XOR shares, ElGamal
// exponents, Laplace noise bits — must come from crypto/rand; a math/rand
// draw anywhere near them is game over regardless of seeding. Outside the
// crypto packages, deterministic workload synthesis is a legitimate use
// and is waved through with //dstress:rand-ok on (or above) the import
// line. Inside strictRandPkgs the annotation is ignored: there is no
// legitimate use to annotate.
var SecureRand = &Analyzer{
	Name: "securerand",
	Doc:  "forbid math/rand in packages handling secrets (crypto packages: unconditionally)",
	Run:  runSecureRand,
}

func runSecureRand(pass *Pass) error {
	strict := strictRandPkgs[relPath(pass.PkgPath)]
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || (path != "math/rand" && path != "math/rand/v2") {
				continue
			}
			pos := imp.Pos()
			if n := imp.Name; n != nil {
				pos = n.Pos()
			}
			switch {
			case strict:
				pass.Reportf(pos, "import of %s in crypto package %s (secret randomness must come from crypto/rand; //dstress:rand-ok is not honored here)", path, pass.PkgPath)
			case !pass.Annotated(imp.Pos(), "rand-ok"):
				pass.Reportf(pos, "import of %s (use crypto/rand, or annotate a deterministic non-crypto use with //dstress:rand-ok)", path)
			}
		}
	}
	return nil
}
