package elgamal

import (
	"math/big"
	"testing"
	"testing/quick"

	"dstress/internal/group"
)

var tg = group.ModP256()

func mustKey(t testing.TB) *PrivateKey {
	t.Helper()
	k, err := GenerateKey(tg)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	sk := mustKey(t)
	table := NewTable(tg, -64, 64)
	for _, m := range []int64{0, 1, -1, 5, -5, 63, -64} {
		c := sk.PublicKey.Encrypt(m)
		got, err := sk.Decrypt(c, table)
		if err != nil {
			t.Fatalf("Decrypt(%d): %v", m, err)
		}
		if got != m {
			t.Errorf("Decrypt(Encrypt(%d)) = %d", m, got)
		}
	}
}

func TestDecryptOutOfRange(t *testing.T) {
	sk := mustKey(t)
	table := NewTable(tg, -4, 4)
	c := sk.PublicKey.Encrypt(100)
	if _, err := sk.Decrypt(c, table); err != ErrOutOfRange {
		t.Errorf("expected ErrOutOfRange, got %v", err)
	}
}

func TestHomomorphicAdd(t *testing.T) {
	sk := mustKey(t)
	table := NewTable(tg, -16, 16)
	a := sk.PublicKey.Encrypt(5)
	b := sk.PublicKey.Encrypt(-3)
	sum := Add(tg, a, b)
	got, err := sk.Decrypt(sum, table)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("5 + (-3) decrypted to %d", got)
	}
}

func TestHomomorphicAddChain(t *testing.T) {
	sk := mustKey(t)
	table := NewTable(tg, 0, 64)
	acc := sk.PublicKey.Encrypt(0)
	want := int64(0)
	for i := int64(1); i <= 10; i++ {
		acc = Add(tg, acc, sk.PublicKey.Encrypt(i))
		want += i
	}
	got, err := sk.Decrypt(acc, table)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
}

func TestAddPlain(t *testing.T) {
	sk := mustKey(t)
	table := NewTable(tg, -16, 16)
	c := AddPlain(tg, sk.PublicKey.Encrypt(3), 4)
	got, err := sk.Decrypt(c, table)
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Errorf("3+4 = %d", got)
	}
}

func TestScalarMul(t *testing.T) {
	sk := mustKey(t)
	table := NewTable(tg, -64, 64)
	c := ScalarMul(tg, sk.PublicKey.Encrypt(5), big.NewInt(7))
	got, err := sk.Decrypt(c, table)
	if err != nil {
		t.Fatal(err)
	}
	if got != 35 {
		t.Errorf("5*7 = %d", got)
	}
}

func TestKeyRandomizationAndAdjust(t *testing.T) {
	// The core trick of §3.4/§3.5: encrypt under h^r, then Adjust with r so
	// the original secret key decrypts.
	sk := mustKey(t)
	table := NewTable(tg, -16, 16)
	r := group.MustRandomScalar(tg)
	rpk := sk.PublicKey.Randomize(r)

	c := rpk.Encrypt(9)
	// Without adjustment, decryption under the original key must fail.
	if m, err := sk.Decrypt(c, table); err == nil && m == 9 {
		t.Fatal("unadjusted ciphertext decrypted correctly; randomization is broken")
	}
	adj := Adjust(tg, c, r)
	got, err := sk.Decrypt(adj, table)
	if err != nil {
		t.Fatal(err)
	}
	if got != 9 {
		t.Errorf("adjusted decrypt = %d, want 9", got)
	}
}

func TestRandomizedKeysUnlinkable(t *testing.T) {
	// Two re-randomizations of the same key must differ from each other and
	// from the original (with overwhelming probability).
	sk := mustKey(t)
	r1 := group.MustRandomScalar(tg)
	r2 := group.MustRandomScalar(tg)
	p1 := sk.PublicKey.Randomize(r1)
	p2 := sk.PublicKey.Randomize(r2)
	if tg.Equal(p1.H, sk.PublicKey.H) || tg.Equal(p2.H, sk.PublicKey.H) || tg.Equal(p1.H, p2.H) {
		t.Error("re-randomized keys collide")
	}
}

func TestAdjustThenHomomorphicAdd(t *testing.T) {
	// The transfer protocol aggregates ciphertexts under the randomized key
	// and adjusts the aggregate; verify the operations commute.
	sk := mustKey(t)
	table := NewTable(tg, -32, 32)
	r := group.MustRandomScalar(tg)
	rpk := sk.PublicKey.Randomize(r)

	c1 := rpk.Encrypt(4)
	c2 := rpk.Encrypt(6)
	sum := Add(tg, c1, c2)
	adj := Adjust(tg, sum, r)
	got, err := sk.Decrypt(adj, table)
	if err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Errorf("4+6 after adjust = %d", got)
	}
}

func TestEncryptMulti(t *testing.T) {
	const n = 5
	sks := make([]*PrivateKey, n)
	pks := make([]PublicKey, n)
	msgs := make([]int64, n)
	for i := range sks {
		sks[i] = mustKey(t)
		pks[i] = sks[i].PublicKey
		msgs[i] = int64(i * 3)
	}
	cts, err := EncryptMulti(pks, msgs)
	if err != nil {
		t.Fatal(err)
	}
	table := NewTable(tg, 0, 32)
	for i, ct := range cts {
		got, err := sks[i].Decrypt(ct, table)
		if err != nil {
			t.Fatal(err)
		}
		if got != msgs[i] {
			t.Errorf("recipient %d got %d, want %d", i, got, msgs[i])
		}
		if i > 0 && !tg.Equal(ct.C1, cts[0].C1) {
			t.Error("multi-recipient ciphertexts do not share the ephemeral component")
		}
	}
}

func TestEncryptMultiErrors(t *testing.T) {
	if _, err := EncryptMulti(nil, nil); err == nil {
		t.Error("EncryptMulti accepted zero recipients")
	}
	sk := mustKey(t)
	if _, err := EncryptMulti([]PublicKey{sk.PublicKey}, []int64{1, 2}); err == nil {
		t.Error("EncryptMulti accepted mismatched lengths")
	}
}

func TestCiphertextsRandomized(t *testing.T) {
	sk := mustKey(t)
	a := sk.PublicKey.Encrypt(1)
	b := sk.PublicKey.Encrypt(1)
	if tg.Equal(a.C1, b.C1) && tg.Equal(a.C2, b.C2) {
		t.Error("two encryptions of the same message are identical")
	}
}

func TestBSGS(t *testing.T) {
	for _, m := range []int64{0, 1, -1, 500, -500, 9999, -10000} {
		p := tg.ScalarBaseMul(big.NewInt(m))
		got, err := BSGS(tg, p, 10000)
		if err != nil {
			t.Fatalf("BSGS(%d): %v", m, err)
		}
		if got != m {
			t.Errorf("BSGS(%d) = %d", m, got)
		}
	}
}

func TestBSGSOutOfRange(t *testing.T) {
	p := tg.ScalarBaseMul(big.NewInt(1000))
	if _, err := BSGS(tg, p, 10); err != ErrOutOfRange {
		t.Errorf("expected ErrOutOfRange, got %v", err)
	}
}

func TestTableSize(t *testing.T) {
	table := NewTable(tg, -5, 5)
	if table.Size() != 11 {
		t.Errorf("Size = %d, want 11", table.Size())
	}
}

// Property: homomorphic addition matches integer addition for small values.
func TestQuickHomomorphism(t *testing.T) {
	sk := mustKey(t)
	table := NewTable(tg, -300, 300)
	f := func(a, b int8) bool {
		ca := sk.PublicKey.Encrypt(int64(a))
		cb := sk.PublicKey.Encrypt(int64(b))
		m, err := sk.Decrypt(Add(tg, ca, cb), table)
		return err == nil && m == int64(a)+int64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: Adjust ∘ Encrypt(h^r) == Encrypt(h) as far as decryption is
// concerned, for random r.
func TestQuickAdjust(t *testing.T) {
	sk := mustKey(t)
	table := NewTable(tg, -200, 200)
	f := func(m int8) bool {
		r := group.MustRandomScalar(tg)
		c := sk.PublicKey.Randomize(r).Encrypt(int64(m))
		got, err := sk.Decrypt(Adjust(tg, c, r), table)
		return err == nil && got == int64(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncrypt(b *testing.B) {
	sk := mustKey(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sk.PublicKey.Encrypt(7)
	}
}

func BenchmarkDecrypt(b *testing.B) {
	sk := mustKey(b)
	table := NewTable(tg, -64, 64)
	c := sk.PublicKey.Encrypt(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sk.Decrypt(c, table); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHomomorphicAdd(b *testing.B) {
	sk := mustKey(b)
	c := sk.PublicKey.Encrypt(7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Add(tg, c, c)
	}
}

// TestPrecomputedKeyCiphertextsIdentical pins the wire-compatibility
// contract of Precompute: under the same ephemeral, a precomputed key
// produces byte-for-byte the same ciphertext as the plain key, for every
// group and for the message edge cases (bits, negatives, table bounds).
func TestPrecomputedKeyCiphertextsIdentical(t *testing.T) {
	for _, g := range []group.Group{group.ModP256(), group.P256(), group.P384()} {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			t.Parallel()
			sk, err := GenerateKey(g)
			if err != nil {
				t.Fatal(err)
			}
			pre := sk.PublicKey.Precompute()
			for i := 0; i < 4; i++ {
				y := group.MustRandomScalar(g)
				for _, m := range []int64{0, 1, -1, 2, -17, 4095} {
					a := sk.PublicKey.EncryptWithEphemeral(m, y)
					b := pre.EncryptWithEphemeral(m, y)
					if string(g.Encode(a.C1)) != string(g.Encode(b.C1)) ||
						string(g.Encode(a.C2)) != string(g.Encode(b.C2)) {
						t.Fatalf("m=%d: precomputed ciphertext differs from plain", m)
					}
				}
			}
		})
	}
}

// TestEncryptMultiPrecomputedKeys checks the multi-recipient path: mixed
// plain and precomputed keys with a shared ephemeral stay byte-identical
// and decrypt correctly.
func TestEncryptMultiPrecomputedKeys(t *testing.T) {
	var sks []*PrivateKey
	var mixed []PublicKey
	for i := 0; i < 4; i++ {
		sk := mustKey(t)
		sks = append(sks, sk)
		if i%2 == 0 {
			mixed = append(mixed, sk.PublicKey.Precompute())
		} else {
			mixed = append(mixed, sk.PublicKey)
		}
	}
	msgs := []int64{0, 1, -2, 31}
	cts, err := EncryptMulti(mixed, msgs)
	if err != nil {
		t.Fatal(err)
	}
	table := NewTable(tg, -64, 64)
	for i, ct := range cts {
		got, err := sks[i].Decrypt(ct, table)
		if err != nil {
			t.Fatalf("recipient %d: %v", i, err)
		}
		if got != msgs[i] {
			t.Errorf("recipient %d: got %d want %d", i, got, msgs[i])
		}
	}
}
