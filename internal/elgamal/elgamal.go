// Package elgamal implements the exponential ElGamal variant that DStress's
// message-transfer protocol relies on (§3 of the paper).
//
// Plain ElGamal over a prime-order group has a multiplicative homomorphism;
// encrypting g^m instead of m (exponential ElGamal, Cramer–Gennaro–
// Schoenmakers) turns it into an additive one: the component-wise product of
// two ciphertexts decrypts to the sum of the underlying messages. The
// downside is that decryption recovers g^m, and the receiver must solve a
// small discrete log; DStress's transferred values are tiny (noised sums of
// bit shares), so a lookup table suffices (§3, "Utility" in Appendix B).
//
// The package also implements the two non-standard operations DStress needs:
//
//   - Public-key re-randomization: h = g^x becomes h^r = g^(xr), so block
//     members cannot be identified by recognizing their public keys (§3.4).
//   - Ciphertext adjustment: a ciphertext produced under h^r is converted to
//     one decryptable with the original secret key x by raising the
//     ephemeral component to r (§3, Appendix A's Adjust).
//
// Finally, it provides the Kurosawa multi-recipient optimization the
// prototype uses (§5.1): when one sender encrypts L values to L different
// public keys, the same ephemeral key y is reused, halving the number of
// exponentiations.
package elgamal

import (
	"errors"
	"fmt"
	"math/big"

	"dstress/internal/group"
)

// PublicKey is an ElGamal public key h = g^x, possibly re-randomized.
type PublicKey struct {
	Group group.Group
	H     group.Element

	// tab is an optional fixed-base table for H. Encryption raises H to a
	// fresh full-width ephemeral for every message, so long-lived keys
	// (the block-certificate keys reused across all iterations) gain a
	// multi-× speedup from precomputation; see Precompute.
	tab *group.FixedBase
}

// Precompute returns a copy of pk carrying a fixed-base table for H.
// Encrypt, EncryptWithEphemeral and EncryptMulti use the table when
// present; the ciphertexts produced are identical to the uncached path
// (same group elements, same wire encoding), only faster. The table is
// immutable, so the returned key is safe for concurrent use.
func (pk PublicKey) Precompute() PublicKey {
	pk.tab = group.Precompute(pk.Group, pk.H)
	return pk
}

// mulH returns H^y through the table when one is attached.
func (pk PublicKey) mulH(y *big.Int) group.Element {
	if pk.tab != nil {
		return pk.tab.ScalarMul(y)
	}
	return pk.Group.ScalarMul(pk.H, y)
}

// PrivateKey holds the secret exponent and the matching public key.
type PrivateKey struct {
	PublicKey
	X *big.Int
}

// Ciphertext is an ElGamal ciphertext (C1, C2) = (g^y, g^m · h^y).
type Ciphertext struct {
	C1, C2 group.Element
}

// GenerateKey draws a fresh key pair over g.
func GenerateKey(g group.Group) (*PrivateKey, error) {
	x := group.MustRandomScalar(g)
	return &PrivateKey{
		PublicKey: PublicKey{Group: g, H: g.ScalarBaseMul(x)},
		X:         x,
	}, nil
}

// Randomize returns the public key raised to r: a valid public key for the
// secret x·r that cannot be linked to the original without knowing r.
func (pk PublicKey) Randomize(r *big.Int) PublicKey {
	return PublicKey{Group: pk.Group, H: pk.Group.ScalarMul(pk.H, r)}
}

// Encrypt encrypts the small integer m under pk using exponential ElGamal:
// (g^y, g^m · h^y) for a fresh ephemeral y. Negative m is valid (the
// exponent is reduced mod q).
func (pk PublicKey) Encrypt(m int64) Ciphertext {
	y := group.MustRandomScalar(pk.Group)
	return pk.EncryptWithEphemeral(m, y)
}

// EncryptWithEphemeral encrypts m using the caller-supplied ephemeral
// scalar. Callers reusing an ephemeral across recipients must use distinct
// public keys for each value (see EncryptMulti).
func (pk PublicKey) EncryptWithEphemeral(m int64, y *big.Int) Ciphertext {
	g := pk.Group
	c1 := g.ScalarBaseMul(y)
	hy := pk.mulH(y)
	return Ciphertext{C1: c1, C2: mulGm(g, hy, m)}
}

// mulGm returns g^m·e. The transfer protocol encrypts single bits, so the
// m = 0 (no-op) and m = 1 (one generator multiplication) cases shortcut
// the general encoding.
func mulGm(g group.Group, e group.Element, m int64) group.Element {
	switch m {
	case 0:
		return e
	case 1:
		return g.Op(g.Generator(), e)
	}
	return g.Op(g.ScalarBaseMul(big.NewInt(m)), e)
}

// EncryptMulti encrypts msgs[i] under pks[i] for all i, reusing a single
// ephemeral key (the Kurosawa multi-recipient optimization). It returns one
// ciphertext per recipient; all share the same C1, which implementations may
// transmit once.
func EncryptMulti(pks []PublicKey, msgs []int64) ([]Ciphertext, error) {
	if len(pks) == 0 {
		return nil, errors.New("elgamal: no recipients")
	}
	if len(pks) != len(msgs) {
		return nil, fmt.Errorf("elgamal: %d recipients but %d messages", len(pks), len(msgs))
	}
	g := pks[0].Group
	y := group.MustRandomScalar(g)
	c1 := g.ScalarBaseMul(y)
	out := make([]Ciphertext, len(pks))
	for i, pk := range pks {
		if pk.Group != g {
			return nil, errors.New("elgamal: recipients use different groups")
		}
		out[i] = Ciphertext{C1: c1, C2: mulGm(g, pk.mulH(y), msgs[i])}
	}
	return out, nil
}

// Add homomorphically adds two ciphertexts encrypted under the same key:
// the result decrypts to the sum of the plaintexts.
func Add(g group.Group, a, b Ciphertext) Ciphertext {
	return Ciphertext{C1: g.Op(a.C1, b.C1), C2: g.Op(a.C2, b.C2)}
}

// AddPlain homomorphically adds the known constant m to a ciphertext
// without touching the ephemeral component.
func AddPlain(g group.Group, a Ciphertext, m int64) Ciphertext {
	return Ciphertext{C1: a.C1, C2: g.Op(a.C2, g.ScalarBaseMul(big.NewInt(m)))}
}

// ScalarMul multiplies the underlying plaintext by the constant k.
func ScalarMul(g group.Group, a Ciphertext, k *big.Int) Ciphertext {
	return Ciphertext{C1: g.ScalarMul(a.C1, k), C2: g.ScalarMul(a.C2, k)}
}

// Adjust converts a ciphertext encrypted under the re-randomized key h^r
// into a ciphertext decryptable with the original secret key, by raising the
// ephemeral component to r (Appendix A's Adjust function). Only the holder
// of r — node i in the transfer protocol — can perform this step; knowledge
// of the secret key is not required.
func Adjust(g group.Group, a Ciphertext, r *big.Int) Ciphertext {
	return Ciphertext{C1: g.ScalarMul(a.C1, r), C2: a.C2}
}

// DecryptPoint recovers the plaintext point g^m: s = C1^x, g^m = C2 · s⁻¹.
func (sk *PrivateKey) DecryptPoint(c Ciphertext) group.Element {
	g := sk.Group
	s := g.ScalarMul(c.C1, sk.X)
	return g.Op(c.C2, g.Inv(s))
}

// Decrypt recovers the small-integer plaintext using the supplied table.
func (sk *PrivateKey) Decrypt(c Ciphertext, table *Table) (int64, error) {
	return table.Lookup(sk.DecryptPoint(c))
}

// ---------------------------------------------------------------------------
// Discrete-log recovery
// ---------------------------------------------------------------------------

// Table maps g^m back to m for m in [Lo, Hi]. Appendix B sizes this table
// against the system's failure probability P_fail: noise values outside the
// table range make the ciphertext unrecoverable.
type Table struct {
	Group   group.Group
	Lo, Hi  int64
	entries map[string]int64
}

// NewTable precomputes g^m for all m in [lo, hi].
func NewTable(g group.Group, lo, hi int64) *Table {
	if hi < lo {
		panic("elgamal: table range inverted")
	}
	t := &Table{Group: g, Lo: lo, Hi: hi, entries: make(map[string]int64, hi-lo+1)}
	e := g.ScalarBaseMul(big.NewInt(lo))
	gen := g.Generator()
	for m := lo; m <= hi; m++ {
		t.entries[string(g.Encode(e))] = m
		e = g.Op(e, gen)
	}
	return t
}

// ErrOutOfRange reports a plaintext outside the lookup table: the "failure"
// event whose probability Appendix B bounds by choosing α_max.
var ErrOutOfRange = errors.New("elgamal: plaintext outside lookup table range")

// Lookup returns m such that point = g^m, or ErrOutOfRange.
func (t *Table) Lookup(point group.Element) (int64, error) {
	if m, ok := t.entries[string(t.Group.Encode(point))]; ok {
		return m, nil
	}
	return 0, ErrOutOfRange
}

// Size returns the number of table entries (N_l in Appendix B).
func (t *Table) Size() int64 { return t.Hi - t.Lo + 1 }

// BSGS recovers m = dlog_g(point) for |m| <= bound using baby-step
// giant-step in O(sqrt(bound)) group operations. It needs no precomputed
// table and is used where a single large-range recovery is cheaper than
// building one (e.g. aggregate decryption in examples).
func BSGS(g group.Group, point group.Element, bound int64) (int64, error) {
	if bound < 0 {
		return 0, errors.New("elgamal: negative BSGS bound")
	}
	// Solve for m in [-bound, bound]. Shift to n = m + bound ∈ [0, 2*bound].
	shifted := g.Op(point, g.ScalarBaseMul(big.NewInt(bound)))
	limit := 2*bound + 1
	step := int64(1)
	for step*step < limit {
		step++
	}
	// Baby steps: g^j for j in [0, step).
	baby := make(map[string]int64, step)
	e := g.Identity()
	gen := g.Generator()
	for j := int64(0); j < step; j++ {
		baby[string(g.Encode(e))] = j
		e = g.Op(e, gen)
	}
	// Giant steps: shifted · (g^-step)^i.
	giant := g.Inv(g.ScalarBaseMul(big.NewInt(step)))
	cur := shifted
	for i := int64(0); i*step < limit; i++ {
		if j, ok := baby[string(g.Encode(cur))]; ok {
			n := i*step + j
			return n - bound, nil
		}
		cur = g.Op(cur, giant)
	}
	return 0, ErrOutOfRange
}
