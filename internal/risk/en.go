package risk

import (
	"fmt"
	"math"

	"dstress/internal/circuit"
	"dstress/internal/finnet"
	"dstress/internal/fixed"
	"dstress/internal/vertex"
)

// ENResult is the outcome of an Eisenberg–Noe clearing computation.
type ENResult struct {
	// Prorate[i] is the fraction of its obligations bank i can pay.
	Prorate []float64
	// Shortfall[i] = TotalDebt(i)·(1−Prorate[i]).
	Shortfall []float64
	// TDS is the total dollar shortfall (§4.1).
	TDS float64
	// Iterations is the number of fixpoint steps performed before
	// convergence (or the cap).
	Iterations int
	// Converged reports whether the tolerance was met within the cap.
	Converged bool
}

// SolveEN computes the Eisenberg–Noe clearing vector by fixpoint iteration
// of the best-response map: each bank pays min(1, liquid/totalDebt) of its
// obligations, where liquid counts cash plus prorated incoming payments
// ([25] proves convergence within N iterations).
func SolveEN(net *finnet.ENNetwork, maxIter int, tol float64) *ENResult {
	n := net.N
	prorate := make([]float64, n)
	for i := range prorate {
		prorate[i] = 1
	}
	totalDebt := make([]float64, n)
	for i := 0; i < n; i++ {
		totalDebt[i] = net.TotalDebt(i)
	}
	res := &ENResult{}
	for it := 0; it < maxIter; it++ {
		next := make([]float64, n)
		maxDelta := 0.0
		for i := 0; i < n; i++ {
			liquid := net.Cash[i]
			for j := 0; j < n; j++ {
				liquid += net.Debt[j][i] * prorate[j]
			}
			if totalDebt[i] > 0 && liquid < totalDebt[i] {
				next[i] = liquid / totalDebt[i]
			} else {
				next[i] = 1
			}
			if d := math.Abs(next[i] - prorate[i]); d > maxDelta {
				maxDelta = d
			}
		}
		prorate = next
		res.Iterations = it + 1
		if maxDelta < tol {
			res.Converged = true
			break
		}
	}
	res.Prorate = prorate
	res.Shortfall = make([]float64, n)
	for i := 0; i < n; i++ {
		res.Shortfall[i] = totalDebt[i] * (1 - prorate[i])
		res.TDS += res.Shortfall[i]
	}
	return res
}

// ENProgram compiles Figure 2(a) into a DStress vertex program.
//
// State: the bank's current dollar shortfall, max(totalDebt − liquid, 0) —
// exactly what the aggregation step sums into the TDS. Message to out-slot
// d: debts[d]·(1−prorate), the portion of the debt the bank cannot pay.
// Private inputs per vertex: cash, totalDebt, the D out-slot debts and the
// D in-slot credits.
//
// granularityDollars is the dollar-DP granularity T; leverage r sets the
// sensitivity 1/r (§4.4, §4.5).
func ENProgram(cfg CircuitConfig, granularityDollars, leverage float64) *vertex.Program {
	w := cfg.Width
	aggBits := w + 12
	if aggBits > 63 {
		aggBits = 63
	}
	return &vertex.Program{
		Name:        "eisenberg-noe",
		StateBits:   w,
		MsgBits:     w,
		AggBits:     aggBits,
		NoOp:        0,
		Sensitivity: ProgramSensitivity(ENSensitivity(leverage), granularityDollars, cfg),
		PrivBits:    func(D int) int { return w * (2 + 2*D) },
		BuildUpdate: func(b *circuit.Builder, D int, state, priv circuit.Word, msgs []circuit.Word) (circuit.Word, []circuit.Word) {
			word := func(idx int) circuit.Word { return priv[idx*w : (idx+1)*w] }
			cash := word(0)
			totalDebt := word(1)
			debts := make([]circuit.Word, D)
			credits := make([]circuit.Word, D)
			for d := 0; d < D; d++ {
				debts[d] = word(2 + d)
				credits[d] = word(2 + D + d)
			}
			// liquid = cash + Σ_d (credits_d − shortfall_d); padding slots
			// have credits_d = 0 and ⊥ = 0 messages, contributing nothing.
			liquid := cash
			for d := 0; d < D; d++ {
				liquid = b.Add(liquid, b.Sub(credits[d], msgs[d]))
			}
			unpaid := b.Sub(totalDebt, liquid)
			distressed := b.LessS(liquid, totalDebt)
			// ratio = (1−prorate) = unpaid/totalDebt ∈ [0,1] when
			// distressed (liquid ≥ 0 always, since shortfalls never exceed
			// credits); the division result is discarded otherwise, which
			// also covers totalDebt = 0.
			zero := b.ConstWord(0, w)
			ratio := b.MuxWord(distressed, b.DivFixed(unpaid, totalDebt, fixed.Frac), zero)
			newState := b.MuxWord(distressed, unpaid, zero)
			out := make([]circuit.Word, D)
			for d := 0; d < D; d++ {
				out[d] = b.MulFixed(debts[d], ratio, fixed.Frac)
			}
			return newState, out
		},
		BuildAggregate: func(b *circuit.Builder, states []circuit.Word) circuit.Word {
			acc := b.ConstWord(0, aggBits)
			for _, s := range states {
				acc = b.Add(acc, b.SignExtend(s, aggBits))
			}
			return acc
		},
	}
}

// ENGraph converts a finnet debt network into a vertex.Graph for ENProgram:
// edge i → j wherever Debt[i][j] > 0 (i sends j its unpaid portion).
func ENGraph(net *finnet.ENNetwork, cfg CircuitConfig, D int) (*vertex.Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := vertex.NewGraph(net.N, D)
	for i := 0; i < net.N; i++ {
		for j := 0; j < net.N; j++ {
			if net.Debt[i][j] > 0 {
				if err := g.AddEdge(i, j); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := g.Finalize(); err != nil {
		return nil, err
	}
	w := cfg.Width
	for i := 0; i < net.N; i++ {
		vals := make([]int64, 0, 2+2*D)
		cash, err := cfg.Encode(net.Cash[i])
		if err != nil {
			return nil, fmt.Errorf("risk: bank %d cash: %w", i, err)
		}
		totalDebt, err := cfg.Encode(net.TotalDebt(i))
		if err != nil {
			return nil, fmt.Errorf("risk: bank %d totalDebt: %w", i, err)
		}
		vals = append(vals, cash, totalDebt)
		// Out-slot debts.
		for d := 0; d < D; d++ {
			var v int64
			if d < len(g.Out[i]) {
				if v, err = cfg.Encode(net.Debt[i][g.Out[i][d]]); err != nil {
					return nil, fmt.Errorf("risk: bank %d debt slot %d: %w", i, d, err)
				}
			}
			vals = append(vals, v)
		}
		// In-slot credits.
		for d := 0; d < D; d++ {
			var v int64
			if d < len(g.In[i]) {
				if v, err = cfg.Encode(net.Debt[g.In[i][d]][i]); err != nil {
					return nil, fmt.Errorf("risk: bank %d credit slot %d: %w", i, d, err)
				}
			}
			vals = append(vals, v)
		}
		var bits []uint8
		for _, v := range vals {
			bits = append(bits, circuit.EncodeWord(v, w)...)
		}
		g.Priv[i] = bits
		g.InitState[i] = 0 // no shortfall before the first update
	}
	return g, nil
}
