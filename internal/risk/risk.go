// Package risk implements the two systemic-risk models of §4 — Eisenberg–
// Noe (debt contagion) and Elliott–Golub–Jackson (equity cross-holdings
// with failure costs) — in three coordinated forms:
//
//  1. Plaintext float64 solvers (SolveEN, SolveEGJ): the economics-
//     literature fixpoint computations, used as ground truth and for the
//     Appendix C convergence experiments.
//  2. DStress vertex programs (ENProgram, EGJProgram): Figure 2's
//     pseudocode compiled to Boolean circuits over fixed-point words.
//  3. Graph builders (ENGraph, EGJGraph) that turn a finnet network into a
//     vertex.Graph with per-vertex private inputs.
//
// Both models measure systemic risk as the total dollar shortfall (TDS,
// §4.1) and release it under dollar-differential privacy: data sets are
// similar when one can be transformed into the other by reallocating at
// most T dollars in one portfolio, giving sensitivities 1/r (EN) and 2/r
// (EGJ) where r bounds bank leverage (§4.4, Hemenway–Khanna).
package risk

import (
	"fmt"
	"math"

	"dstress/internal/fixed"
)

// CircuitConfig fixes the fixed-point representation used by the circuit
// programs.
type CircuitConfig struct {
	// Width is the word width in bits (state, messages, private inputs).
	Width int
	// Unit is the dollar value of 1.0 in fixed point (e.g. 1e6 = work in
	// millions).
	Unit float64
}

// DefaultCircuitConfig works in millions of dollars with 40-bit words:
// magnitudes up to ±2^23 units (≈ $8.4 trillion) at ≈ $15 resolution.
func DefaultCircuitConfig() CircuitConfig {
	return CircuitConfig{Width: 40, Unit: 1e6}
}

// Validate checks representable ranges.
func (c CircuitConfig) Validate() error {
	if c.Width < 24 || c.Width > 60 {
		return fmt.Errorf("risk: width %d out of [24,60]", c.Width)
	}
	if c.Unit <= 0 {
		return fmt.Errorf("risk: unit %v must be positive", c.Unit)
	}
	return nil
}

// MaxDollars returns the largest representable magnitude.
func (c CircuitConfig) MaxDollars() float64 {
	return float64(int64(1)<<(c.Width-1)) / float64(fixed.One) * c.Unit
}

// Encode converts dollars to a fixed-point raw word, checking range.
func (c CircuitConfig) Encode(dollars float64) (int64, error) {
	raw := fixed.FromFloat(dollars / c.Unit).Raw()
	limit := int64(1) << (c.Width - 1)
	if raw >= limit || raw < -limit {
		return 0, fmt.Errorf("risk: %v dollars exceeds %d-bit fixed range (max %v)", dollars, c.Width, c.MaxDollars())
	}
	return raw, nil
}

// Decode converts a raw circuit output word back to dollars.
func (c CircuitConfig) Decode(raw int64) float64 {
	return fixed.FromRaw(raw).Float() * c.Unit
}

// ENSensitivity returns the Eisenberg–Noe sensitivity bound 1/r, where the
// leverage ratio of every bank is capped at 1:r (§4.4).
func ENSensitivity(r float64) float64 {
	if r <= 0 {
		panic("risk: leverage bound must be positive")
	}
	return 1 / r
}

// EGJSensitivity returns the Elliott–Golub–Jackson sensitivity bound 2/r
// (Hemenway–Khanna, §4.4).
func EGJSensitivity(r float64) float64 {
	if r <= 0 {
		panic("risk: leverage bound must be positive")
	}
	return 2 / r
}

// ProgramSensitivity converts a model sensitivity and a dollar granularity
// T (§4.5's $1 billion) into the aggregate-unit sensitivity the vertex
// runtime's noise generator expects.
func ProgramSensitivity(modelSensitivity, granularityDollars float64, cfg CircuitConfig) float64 {
	return modelSensitivity * granularityDollars / cfg.Unit
}

// RecommendedIterations returns the iteration count the Appendix C
// experiments support: shocks traverse the core-periphery network within
// log2(N) hops.
func RecommendedIterations(n int) int {
	if n < 2 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(n))))
}
