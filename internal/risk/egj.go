package risk

import (
	"fmt"

	"dstress/internal/circuit"
	"dstress/internal/finnet"
	"dstress/internal/fixed"
	"dstress/internal/vertex"
)

// EGJResult is the outcome of an Elliott–Golub–Jackson contagion
// computation.
type EGJResult struct {
	// Value[i] is bank i's valuation after the run (post-penalty).
	Value []float64
	// Failed[i] reports whether i ended below its threshold.
	Failed []bool
	// TDS sums threshold−value over failed banks (§4.3's aggregation).
	TDS float64
	// Iterations is the number of steps performed.
	Iterations int
}

// SolveEGJ runs the Elliott–Golub–Jackson fixpoint for a fixed number of
// iterations. Values decline monotonically ([39]), so a capped iteration
// count yields a lower bound on the damage that converges quickly.
func SolveEGJ(net *finnet.EGJNetwork, iterations int) *EGJResult {
	n := net.N
	discount := make([]float64, n)
	value := make([]float64, n)
	for it := 0; it < iterations; it++ {
		next := make([]float64, n)
		for i := 0; i < n; i++ {
			v := net.Base[i]
			for j := 0; j < n; j++ {
				if net.Holdings[i][j] != 0 {
					v += net.Holdings[i][j] * (1 - discount[j]) * net.OrigVal[j]
				}
			}
			if v < net.Threshold[i] {
				v -= net.Penalty[i]
			}
			value[i] = v
			d := 0.0
			if net.OrigVal[i] > 0 {
				d = 1 - v/net.OrigVal[i]
			}
			if d < 0 {
				d = 0
			}
			if d > 1 {
				d = 1
			}
			next[i] = d
		}
		discount = next
	}
	res := &EGJResult{Value: value, Failed: make([]bool, n), Iterations: iterations}
	for i := 0; i < n; i++ {
		if value[i] < net.Threshold[i] {
			res.Failed[i] = true
			res.TDS += net.Threshold[i] - value[i]
		}
	}
	return res
}

// EGJProgram compiles Figure 2(b) into a DStress vertex program.
//
// State: the bank's dollar shortfall relative to its failure threshold,
// max(threshold − value, 0) (what AGGREGATE sums). Message: the bank's
// valuation discount 1 − value/origVal, clamped to [0,1]. Private inputs:
// base assets, threshold, penalty, origVal, and per in-slot d the
// premultiplied cross-holding value c_d = holdings[i][j_d]·origVal[j_d]
// (constant across iterations, so it folds into one private word).
func EGJProgram(cfg CircuitConfig, granularityDollars, leverage float64) *vertex.Program {
	w := cfg.Width
	aggBits := w + 12
	if aggBits > 63 {
		aggBits = 63
	}
	return &vertex.Program{
		Name:        "elliott-golub-jackson",
		StateBits:   w,
		MsgBits:     w,
		AggBits:     aggBits,
		NoOp:        0,
		Sensitivity: ProgramSensitivity(EGJSensitivity(leverage), granularityDollars, cfg),
		PrivBits:    func(D int) int { return w * (4 + D) },
		BuildUpdate: func(b *circuit.Builder, D int, state, priv circuit.Word, msgs []circuit.Word) (circuit.Word, []circuit.Word) {
			word := func(idx int) circuit.Word { return priv[idx*w : (idx+1)*w] }
			base := word(0)
			threshold := word(1)
			penalty := word(2)
			origVal := word(3)
			// value = base + Σ_d (c_d − c_d·discount_d); padding slots have
			// c_d = 0 and ⊥ = 0, contributing nothing.
			value := base
			for d := 0; d < D; d++ {
				cd := word(4 + d)
				value = b.Add(value, b.Sub(cd, b.MulFixed(cd, msgs[d], fixed.Frac)))
			}
			failed := b.LessS(value, threshold)
			value = b.MuxWord(failed, b.Sub(value, penalty), value)
			// Post-penalty shortfall (the penalty deepens it; value stays
			// below threshold once failed).
			zero := b.ConstWord(0, w)
			shortfall := b.MuxWord(failed, b.Sub(threshold, value), zero)
			// discount = clamp(1 − value/origVal, 0, 1).
			one := b.ConstWord(int64(fixed.One), w)
			disc := b.Sub(one, b.DivFixed(value, origVal, fixed.Frac))
			disc = b.MaxS(disc, zero)
			disc = b.MinS(disc, one)
			out := make([]circuit.Word, D)
			for d := 0; d < D; d++ {
				out[d] = disc
			}
			return shortfall, out
		},
		BuildAggregate: func(b *circuit.Builder, states []circuit.Word) circuit.Word {
			acc := b.ConstWord(0, aggBits)
			for _, s := range states {
				acc = b.Add(acc, b.SignExtend(s, aggBits))
			}
			return acc
		},
	}
}

// EGJGraph converts a finnet cross-holding network into a vertex.Graph for
// EGJProgram: edge j → i wherever Holdings[i][j] > 0 (j's discount flows to
// its holders).
func EGJGraph(net *finnet.EGJNetwork, cfg CircuitConfig, D int) (*vertex.Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := vertex.NewGraph(net.N, D)
	for i := 0; i < net.N; i++ {
		for j := 0; j < net.N; j++ {
			if net.Holdings[i][j] > 0 {
				if err := g.AddEdge(j, i); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := g.Finalize(); err != nil {
		return nil, err
	}
	w := cfg.Width
	for i := 0; i < net.N; i++ {
		vals := make([]int64, 0, 4+D)
		for _, dollars := range []float64{net.Base[i], net.Threshold[i], net.Penalty[i], net.OrigVal[i]} {
			v, err := cfg.Encode(dollars)
			if err != nil {
				return nil, fmt.Errorf("risk: bank %d balance sheet: %w", i, err)
			}
			vals = append(vals, v)
		}
		for d := 0; d < D; d++ {
			var v int64
			if d < len(g.In[i]) {
				j := g.In[i][d]
				var err error
				if v, err = cfg.Encode(net.Holdings[i][j] * net.OrigVal[j]); err != nil {
					return nil, fmt.Errorf("risk: bank %d holding slot %d: %w", i, d, err)
				}
			}
			vals = append(vals, v)
		}
		var bits []uint8
		for _, v := range vals {
			bits = append(bits, circuit.EncodeWord(v, w)...)
		}
		g.Priv[i] = bits
		g.InitState[i] = 0
	}
	return g, nil
}
