package risk

import (
	"context"
	"math"
	"testing"

	"dstress/internal/finnet"
	"dstress/internal/group"
	"dstress/internal/vertex"
)

// --- Plaintext Eisenberg–Noe ------------------------------------------------

func twoBankEN() *finnet.ENNetwork {
	// A owes B $10 but holds only $5: prorate_A = 0.5, TDS = $5.
	return &finnet.ENNetwork{
		N:    2,
		Cash: []float64{5, 0},
		Debt: [][]float64{{0, 10}, {0, 0}},
	}
}

func TestSolveENTwoBanks(t *testing.T) {
	res := SolveEN(twoBankEN(), 10, 1e-9)
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if math.Abs(res.Prorate[0]-0.5) > 1e-9 {
		t.Errorf("prorate A = %v, want 0.5", res.Prorate[0])
	}
	if res.Prorate[1] != 1 {
		t.Errorf("prorate B = %v, want 1", res.Prorate[1])
	}
	if math.Abs(res.TDS-5) > 1e-9 {
		t.Errorf("TDS = %v, want 5", res.TDS)
	}
}

func TestSolveENNoDistress(t *testing.T) {
	net := &finnet.ENNetwork{
		N:    3,
		Cash: []float64{100, 100, 100},
		Debt: [][]float64{{0, 10, 5}, {3, 0, 2}, {1, 1, 0}},
	}
	res := SolveEN(net, 10, 1e-9)
	if res.TDS != 0 {
		t.Errorf("healthy network has TDS %v", res.TDS)
	}
	for i, p := range res.Prorate {
		if p != 1 {
			t.Errorf("bank %d prorate %v", i, p)
		}
	}
}

func TestSolveENCascade(t *testing.T) {
	// Chain: 0 owes 1 owes 2, each with thin cash; wiping 0's cash must
	// cascade into 1's ability to pay 2.
	net := &finnet.ENNetwork{
		N:    3,
		Cash: []float64{10, 2, 1},
		Debt: [][]float64{{0, 10, 0}, {0, 0, 10}, {0, 0, 0}},
	}
	healthy := SolveEN(net, 20, 1e-9)
	net.ApplyCashShock([]int{0}, 0)
	shocked := SolveEN(net, 20, 1e-9)
	if shocked.TDS <= healthy.TDS {
		t.Errorf("shock did not increase TDS: %v vs %v", shocked.TDS, healthy.TDS)
	}
	// Bank 1 is dragged down by 0's default: prorate_1 < 1.
	if shocked.Prorate[1] >= 1 {
		t.Errorf("no cascade: prorate_1 = %v", shocked.Prorate[1])
	}
}

func TestSolveENMonotoneInShock(t *testing.T) {
	top, _ := finnet.CorePeriphery(finnet.CorePeripheryParams{N: 30, Core: 6, D: 12, PeriLink: 2, Seed: 11})
	base := finnet.BuildEN(top, finnet.ENParams{CoreCash: 50, PeriCash: 8, CoreSize: 6, DebtScale: 30, Seed: 11})
	var prev float64 = -1
	for _, factor := range []float64{1.0, 0.5, 0.25, 0.0} {
		net := &finnet.ENNetwork{N: base.N, Cash: append([]float64{}, base.Cash...), Debt: base.Debt}
		net.ApplyCashShock([]int{0, 1, 2}, factor)
		tds := SolveEN(net, 64, 1e-9).TDS
		if prev >= 0 && tds < prev-1e-9 {
			t.Errorf("TDS not monotone in shock severity: %v after %v", tds, prev)
		}
		prev = tds
	}
}

func TestSolveENConvergesWithinN(t *testing.T) {
	// [25]: the fixpoint converges within N iterations.
	top, _ := finnet.CorePeriphery(finnet.CorePeripheryParams{N: 40, Core: 8, D: 16, PeriLink: 2, Seed: 4})
	net := finnet.BuildEN(top, finnet.ENParams{CoreCash: 20, PeriCash: 3, CoreSize: 8, DebtScale: 25, Seed: 4})
	net.ApplyCashShock([]int{0, 1}, 0)
	res := SolveEN(net, net.N, 1e-6)
	if !res.Converged {
		t.Errorf("EN did not converge within N=%d iterations", net.N)
	}
}

// --- Plaintext Elliott–Golub–Jackson ----------------------------------------

func TestSolveEGJHealthy(t *testing.T) {
	top, _ := finnet.CorePeriphery(finnet.CorePeripheryParams{N: 20, Core: 4, D: 10, PeriLink: 1, Seed: 2})
	net := finnet.BuildEGJ(top, finnet.EGJParams{
		CoreBase: 100, PeriBase: 10, CoreSize: 4,
		HoldingFrac: 0.05, ThresholdFrac: 0.8, PenaltyFrac: 0.2, Seed: 2,
	})
	res := SolveEGJ(net, 10)
	if res.TDS != 0 {
		t.Errorf("unshocked network has TDS %v", res.TDS)
	}
}

func TestSolveEGJPenaltyDiscontinuity(t *testing.T) {
	// Two banks holding each other: a base shock pushing bank 0 below
	// threshold triggers the penalty, deepening the shortfall beyond the
	// raw asset loss.
	net := &finnet.EGJNetwork{
		N:         2,
		Base:      []float64{100, 100},
		OrigVal:   []float64{110, 110},
		Holdings:  [][]float64{{0, 0.1}, {0.1, 0}},
		Threshold: []float64{100, 100},
		Penalty:   []float64{30, 30},
	}
	res := SolveEGJ(net, 10)
	if res.TDS != 0 {
		t.Fatalf("pre-shock TDS = %v", res.TDS)
	}
	net.ApplyBaseShock([]int{0}, 0.8) // lose 20: value_0 ≈ 91 < 100
	res = SolveEGJ(net, 10)
	if !res.Failed[0] {
		t.Fatal("bank 0 did not fail")
	}
	// Shortfall must exceed the raw 20-dollar asset loss − buffer (9):
	// the 30-dollar penalty deepens it.
	if res.TDS < 30 {
		t.Errorf("TDS = %v; penalty discontinuity missing", res.TDS)
	}
}

func TestSolveEGJContagionThroughHoldings(t *testing.T) {
	// Bank 1 holds much of bank 0; shocking 0 must damage 1 even though
	// 1's base assets are untouched.
	net := &finnet.EGJNetwork{
		N:         2,
		Base:      []float64{100, 50},
		OrigVal:   []float64{110, 105},
		Holdings:  [][]float64{{0, 0}, {0.5, 0}},
		Threshold: []float64{90, 95},
		Penalty:   []float64{10, 10},
	}
	net.ApplyBaseShock([]int{0}, 0.3)
	res := SolveEGJ(net, 10)
	if !res.Failed[1] {
		t.Errorf("holder bank did not fail; values %v", res.Value)
	}
}

// --- Circuit configuration ---------------------------------------------------

func TestCircuitConfigEncodeDecode(t *testing.T) {
	cfg := DefaultCircuitConfig()
	for _, dollars := range []float64{0, 1e6, -1e6, 2.5e9, 7.77e11} {
		raw, err := cfg.Encode(dollars)
		if err != nil {
			t.Fatalf("Encode(%v): %v", dollars, err)
		}
		back := cfg.Decode(raw)
		if math.Abs(back-dollars) > cfg.Unit/float64(1<<15) {
			t.Errorf("round trip %v -> %v", dollars, back)
		}
	}
	if _, err := cfg.Encode(1e14); err == nil {
		t.Error("out-of-range encode accepted")
	}
	if err := (CircuitConfig{Width: 10, Unit: 1}).Validate(); err == nil {
		t.Error("tiny width accepted")
	}
}

func TestSensitivities(t *testing.T) {
	if got := ENSensitivity(0.1); got != 10 {
		t.Errorf("ENSensitivity(0.1) = %v", got)
	}
	if got := EGJSensitivity(0.1); got != 20 {
		t.Errorf("EGJSensitivity(0.1) = %v", got)
	}
	cfg := DefaultCircuitConfig()
	// T = $1B at unit $1M: sensitivity 20 -> 20000 units.
	if got := ProgramSensitivity(20, 1e9, cfg); got != 20000 {
		t.Errorf("ProgramSensitivity = %v", got)
	}
}

func TestRecommendedIterations(t *testing.T) {
	cases := map[int]int{2: 1, 50: 6, 100: 7, 1750: 11}
	for n, want := range cases {
		if got := RecommendedIterations(n); got != want {
			t.Errorf("RecommendedIterations(%d) = %d, want %d", n, got, want)
		}
	}
}

// --- Program / reference agreement -------------------------------------------

func smallENNet(t *testing.T) *finnet.ENNetwork {
	t.Helper()
	// A six-bank debt chain with thin cash: wiping bank 0's reserves makes
	// shortfalls cascade down the chain, guaranteeing a positive TDS that
	// needs several iterations to settle.
	net := &finnet.ENNetwork{
		N:    6,
		Cash: []float64{5, 10, 10, 10, 10, 10},
		Debt: [][]float64{
			{0, 100, 0, 0, 0, 0},
			{0, 0, 80, 0, 0, 0},
			{0, 0, 0, 60, 0, 0},
			{0, 0, 0, 0, 40, 0},
			{0, 0, 0, 0, 0, 20},
			{0, 0, 0, 0, 0, 0},
		},
	}
	net.ApplyCashShock([]int{0}, 0)
	return net
}

func TestENGraphShape(t *testing.T) {
	cfg := CircuitConfig{Width: 32, Unit: 1}
	net := smallENNet(t)
	g, err := ENGraph(net, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != net.N {
		t.Fatalf("graph has %d vertices", g.N())
	}
	prog := ENProgram(cfg, 1, 0.1)
	for v := 0; v < g.N(); v++ {
		if len(g.Priv[v]) != prog.PrivBits(3) {
			t.Errorf("vertex %d priv bits %d, want %d", v, len(g.Priv[v]), prog.PrivBits(3))
		}
	}
	// Edges must mirror positive debts.
	for i := 0; i < net.N; i++ {
		for j := 0; j < net.N; j++ {
			if (net.Debt[i][j] > 0) != g.HasEdge(i, j) {
				t.Errorf("edge (%d,%d) mismatch", i, j)
			}
		}
	}
}

func TestENReferenceMatchesSolver(t *testing.T) {
	cfg := CircuitConfig{Width: 32, Unit: 1}
	net := smallENNet(t)
	prog := ENProgram(cfg, 1, 0.1)
	g, err := ENGraph(net, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	const iters = 8
	raw, err := vertex.RunReference(prog, g, iters)
	if err != nil {
		t.Fatal(err)
	}
	got := cfg.Decode(raw)
	want := SolveEN(net, iters+1, 0).TDS
	if math.Abs(got-want) > 0.05*want+0.5 {
		t.Errorf("circuit TDS = %v, solver TDS = %v", got, want)
	}
	if want <= 0 {
		t.Error("test scenario produced no shortfall; pick a harsher shock")
	}
}

func smallEGJNet(t *testing.T) *finnet.EGJNetwork {
	t.Helper()
	top, err := finnet.CorePeriphery(finnet.CorePeripheryParams{N: 6, Core: 2, D: 3, PeriLink: 1, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	net := finnet.BuildEGJ(top, finnet.EGJParams{
		CoreBase: 60, PeriBase: 10, CoreSize: 2,
		HoldingFrac: 0.2, ThresholdFrac: 0.9, PenaltyFrac: 0.25, Seed: 13,
	})
	net.ApplyBaseShock([]int{0}, 0.3)
	return net
}

func TestEGJReferenceMatchesSolver(t *testing.T) {
	cfg := CircuitConfig{Width: 32, Unit: 1}
	net := smallEGJNet(t)
	prog := EGJProgram(cfg, 1, 0.1)
	g, err := EGJGraph(net, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	const iters = 8
	raw, err := vertex.RunReference(prog, g, iters)
	if err != nil {
		t.Fatal(err)
	}
	got := cfg.Decode(raw)
	want := SolveEGJ(net, iters+1).TDS
	if want <= 0 {
		t.Fatal("test scenario produced no shortfall")
	}
	if math.Abs(got-want) > 0.05*want+0.5 {
		t.Errorf("circuit TDS = %v, solver TDS = %v", got, want)
	}
}

func TestEGJGraphShape(t *testing.T) {
	cfg := CircuitConfig{Width: 32, Unit: 1}
	net := smallEGJNet(t)
	g, err := EGJGraph(net, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < net.N; i++ {
		for j := 0; j < net.N; j++ {
			if (net.Holdings[i][j] > 0) != g.HasEdge(j, i) {
				t.Errorf("holding (%d,%d) edge mismatch", i, j)
			}
		}
	}
}

// --- End-to-end MPC ------------------------------------------------------------

func TestENEndToEndMPC(t *testing.T) {
	if testing.Short() {
		t.Skip("MPC end-to-end test skipped in -short mode")
	}
	cfg := CircuitConfig{Width: 32, Unit: 1}
	net := smallENNet(t)
	prog := ENProgram(cfg, 1, 0.1)
	g, err := ENGraph(net, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	const iters = 3
	wantRaw, err := vertex.RunReference(prog, g, iters)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := vertex.New(context.Background(), vertex.Config{
		Group: group.ModP256(), K: 1, Alpha: 0.5, Epsilon: 0, OTMode: vertex.OTDealer,
	}, prog, g)
	if err != nil {
		t.Fatal(err)
	}
	gotRaw, rep, err := rt.Run(context.Background(), iters)
	if err != nil {
		t.Fatal(err)
	}
	if gotRaw != wantRaw {
		t.Errorf("MPC TDS raw = %d, reference = %d", gotRaw, wantRaw)
	}
	if rep.UpdateAndGates < 1000 {
		t.Errorf("EN update circuit suspiciously small: %d AND gates", rep.UpdateAndGates)
	}
	t.Logf("EN end-to-end: TDS = %v, update circuit %d ANDs, total %.1f KB/node avg",
		cfg.Decode(gotRaw), rep.UpdateAndGates, rep.AvgNodeBytes/1024)
}

func TestEGJEndToEndMPC(t *testing.T) {
	if testing.Short() {
		t.Skip("MPC end-to-end test skipped in -short mode")
	}
	cfg := CircuitConfig{Width: 32, Unit: 1}
	net := smallEGJNet(t)
	prog := EGJProgram(cfg, 1, 0.1)
	g, err := EGJGraph(net, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	const iters = 3
	wantRaw, err := vertex.RunReference(prog, g, iters)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := vertex.New(context.Background(), vertex.Config{
		Group: group.ModP256(), K: 1, Alpha: 0.5, Epsilon: 0, OTMode: vertex.OTDealer,
	}, prog, g)
	if err != nil {
		t.Fatal(err)
	}
	gotRaw, _, err := rt.Run(context.Background(), iters)
	if err != nil {
		t.Fatal(err)
	}
	if gotRaw != wantRaw {
		t.Errorf("MPC TDS raw = %d, reference = %d", gotRaw, wantRaw)
	}
}
