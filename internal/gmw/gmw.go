// Package gmw implements the Goldreich–Micali–Wigderson protocol for
// semi-honest n-party computation of Boolean circuits over XOR shares.
//
// This is the MPC engine behind every DStress computation step: the members
// of a block hold XOR shares of the vertex state and incoming messages, run
// the update function's circuit through GMW, and end up with XOR shares of
// the new state and outgoing messages, never reconstructing any
// intermediate value (§3.3, §3.6). The paper's prototype uses the GMW
// implementation of Choi et al. under the Wysteria runtime (§5.1); this
// package is a from-scratch Go equivalent.
//
// Protocol recap. Every wire w carries a sharing ⟨w⟩ = (w₁,…,wₙ) with
// w = ⊕ᵢwᵢ:
//
//   - XOR gates are free: each party XORs its shares locally.
//   - The public constant 1 is shared as (1,0,…,0).
//   - An AND gate x∧y expands to ⊕ᵢxᵢyᵢ ⊕ ⊕_{i≠j} xᵢyⱼ. Party i computes
//     xᵢyᵢ locally; each cross term xᵢyⱼ is computed with one 1-of-2 OT in
//     which sender i inputs (r, r⊕xᵢ) for fresh random r and receiver j
//     selects with yⱼ, so the pair obtains an XOR sharing (r, r⊕xᵢyⱼ).
//
// All AND gates of one multiplicative-depth level are batched into a single
// message exchange per ordered party pair (the interaction schedule comes
// from circuit.Rounds), which is what makes the per-step latency of §5.2
// proportional to circuit depth rather than AND count.
//
// The data plane is packed: wire values live in a []uint64 bitmap, an AND
// round gathers its operand bits into packed words once, and everything
// downstream — the local xᵢyᵢ term, the OT pads and derandomization masks,
// the per-peer share accumulation — is 64-bits-at-a-time word arithmetic
// (see internal/ot's packed variants and circuit.PackedRounds).
//
// Collusion resistance matches the paper: with k+1 parties, any k colluders
// miss at least one share of every wire (GMW is secure against n−1
// semi-honest corruptions).
package gmw

import (
	"context"
	"fmt"
	"sync"

	"dstress/internal/circuit"
	"dstress/internal/group"
	"dstress/internal/network"
	"dstress/internal/obs"
	"dstress/internal/ot"
)

// OTOption selects how the pairwise oblivious transfers are provisioned.
type OTOption interface{ otOption() }

// IKNPOT bootstraps fresh DH base OTs over Group for this one session and
// extends them with IKNP. Deployments that stand up many sessions should
// use SubstrateOT instead, which pays the public-key bootstrap once per
// node pair; IKNPOT remains for self-contained two-party uses and tests.
type IKNPOT struct{ Group group.Group }

// SubstrateOT attaches the session to a deployment-wide pairwise OT
// substrate: the base-OT handshake runs (at most) once per ordered node
// pair per deployment, and this session derives its own extension streams
// from it via a PRF over the session tag. This is the configuration that
// models the paper's prototype faithfully at deployment scale.
type SubstrateOT struct{ Sub *ot.Substrate }

// DealerOT draws correlated randomness from a trusted-party broker
// (offline/online split). Online traffic is identical to the IKNP options
// minus the 16-byte-per-OT extension messages; see internal/ot for the
// argument that this preserves the TP's never-sees-private-data property.
// One broker serves a whole deployment: sessions get independent streams
// derived from the broker's per-pair master seeds by session tag.
type DealerOT struct{ Broker *ot.DealerBroker }

func (IKNPOT) otOption()      {}
func (SubstrateOT) otOption() {}
func (DealerOT) otOption()    {}

// Config describes one party's view of a GMW session.
type Config struct {
	// Parties lists the session members in a globally agreed order.
	Parties []network.NodeID
	// Index is this party's position in Parties.
	Index int
	// Transport is this party's attachment to the messaging layer (the
	// in-process hub endpoint or a tcpnet peer); its ID must equal
	// Parties[Index].
	Transport network.Transport
	// Tag namespaces this session's traffic.
	Tag string
	// OT selects the OT provisioning (SubstrateOT, IKNPOT or DealerOT).
	OT OTOption
}

// Party is one session member. All parties of a session must execute the
// same sequence of Evaluate/Open calls with the same circuits.
type Party struct {
	cfg  Config
	ep   network.Transport
	n    int
	me   int
	send map[int]*ot.BitSender   // ordered pair me→j
	recv map[int]*ot.BitReceiver // ordered pair j→me
	seq  int
}

// NewParty joins the session described by cfg. For IKNPOT the call blocks
// until all peers join (base-OT handshakes), so the n parties must call it
// concurrently; for SubstrateOT it blocks only on pairs whose one-time
// handshake hasn't happened yet. Canceling ctx aborts a handshake stuck on
// an absent peer.
func NewParty(ctx context.Context, cfg Config) (*Party, error) {
	n := len(cfg.Parties)
	if n < 2 {
		return nil, fmt.Errorf("gmw: need at least 2 parties, got %d", n)
	}
	if cfg.Index < 0 || cfg.Index >= n {
		return nil, fmt.Errorf("gmw: index %d out of range", cfg.Index)
	}
	if cfg.Transport == nil {
		return nil, fmt.Errorf("gmw: nil transport")
	}
	if cfg.Transport.ID() != cfg.Parties[cfg.Index] {
		return nil, fmt.Errorf("gmw: transport belongs to node %d, party %d is node %d",
			cfg.Transport.ID(), cfg.Index, cfg.Parties[cfg.Index])
	}
	p := &Party{
		cfg:  cfg,
		ep:   cfg.Transport,
		n:    n,
		me:   cfg.Index,
		send: make(map[int]*ot.BitSender),
		recv: make(map[int]*ot.BitReceiver),
	}

	switch opt := cfg.OT.(type) {
	case DealerOT:
		for j := 0; j < n; j++ {
			if j == p.me {
				continue
			}
			// Streams are keyed by global node ids plus the session tag:
			// one deployment-wide broker hands every session of every pair
			// its own derived stream, consumed in lockstep within that
			// session only.
			sTag := network.Tag(cfg.Tag, "ot", p.me, j)
			rTag := network.Tag(cfg.Tag, "ot", j, p.me)
			si, sj := int(cfg.Parties[p.me]), int(cfg.Parties[j])
			ds, err := opt.Broker.Sender(si, sj, cfg.Tag)
			if err != nil {
				return nil, fmt.Errorf("gmw: dealer stream for pair (%d,%d): %w", si, sj, err)
			}
			dr, err := opt.Broker.Receiver(sj, si, cfg.Tag)
			if err != nil {
				return nil, fmt.Errorf("gmw: dealer stream for pair (%d,%d): %w", sj, si, err)
			}
			p.send[j] = ot.NewBitSender(ds, p.ep, cfg.Parties[j], sTag)
			p.recv[j] = ot.NewBitReceiver(dr, p.ep, cfg.Parties[j], rTag)
		}
	case IKNPOT, SubstrateOT:
		// Run all 2(n-1) attachments concurrently; they interleave freely
		// because tags separate the directions.
		var wg sync.WaitGroup
		var mu sync.Mutex
		var firstErr error
		record := func(err error) {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}
		mkSender := func(ctx context.Context, peer network.NodeID, tag string) (*ot.IKNPSender, error) {
			if sub, ok := opt.(SubstrateOT); ok {
				return sub.Sub.SenderFor(ctx, peer, tag)
			}
			return ot.NewIKNPSender(ctx, opt.(IKNPOT).Group, p.ep, peer, tag)
		}
		mkReceiver := func(ctx context.Context, peer network.NodeID, tag string) (*ot.IKNPReceiver, error) {
			if sub, ok := opt.(SubstrateOT); ok {
				return sub.Sub.ReceiverFor(ctx, peer, tag)
			}
			return ot.NewIKNPReceiver(ctx, opt.(IKNPOT).Group, p.ep, peer, tag)
		}
		for j := 0; j < n; j++ {
			if j == p.me {
				continue
			}
			j := j
			wg.Add(2)
			go func() {
				defer wg.Done()
				sTag := network.Tag(cfg.Tag, "ot", p.me, j)
				src, err := mkSender(ctx, cfg.Parties[j], sTag)
				if err != nil {
					record(err)
					return
				}
				mu.Lock()
				p.send[j] = ot.NewBitSender(src, p.ep, cfg.Parties[j], sTag)
				mu.Unlock()
			}()
			go func() {
				defer wg.Done()
				rTag := network.Tag(cfg.Tag, "ot", j, p.me)
				src, err := mkReceiver(ctx, cfg.Parties[j], rTag)
				if err != nil {
					record(err)
					return
				}
				mu.Lock()
				p.recv[j] = ot.NewBitReceiver(src, p.ep, cfg.Parties[j], rTag)
				mu.Unlock()
			}()
		}
		wg.Wait()
		if firstErr != nil {
			return nil, fmt.Errorf("gmw: OT setup: %w", firstErr)
		}
	default:
		return nil, fmt.Errorf("gmw: unknown OT option %T", cfg.OT)
	}
	return p, nil
}

// N returns the number of session parties.
func (p *Party) N() int { return p.n }

// Index returns this party's session index.
func (p *Party) Index() int { return p.me }

// Evaluate runs the circuit on this party's input shares and returns its
// shares of the outputs. The XOR over all parties' inputShares must equal
// the plaintext input bits; likewise for the returned output shares.
func (p *Party) Evaluate(ctx context.Context, c *circuit.Circuit, inputShares []uint8) ([]uint8, error) {
	if len(inputShares) != c.NumInputs {
		return nil, fmt.Errorf("gmw: got %d input shares, want %d", len(inputShares), c.NumInputs)
	}
	evalID := p.seq
	p.seq++

	// Wire values as a packed bitmap; every wire is written exactly once.
	vals := make([]uint64, ot.Words(c.NumWires()))
	// Public constant one: party 0 holds the set share.
	if p.me == 0 {
		ot.SetBit(vals, int(circuit.WireOne), 1)
	}
	for i, b := range inputShares {
		if b > 1 {
			return nil, fmt.Errorf("gmw: input share %d is not a bit", i)
		}
		ot.SetBit(vals, 2+i, uint64(b))
	}

	obs.Add(ctx, "gmw/evals", 1)
	packed := c.PackedRounds()
	for r, round := range c.Rounds {
		if len(round.And) > 0 {
			obs.Add(ctx, "gmw/and_rounds", 1)
			obs.Add(ctx, "gmw/and_gates", int64(len(round.And)))
			if err := p.andRound(ctx, vals, &packed[r], evalID, r); err != nil {
				return nil, err
			}
		}
		for _, gi := range round.Local {
			g := c.Gates[gi]
			ot.SetBit(vals, 2+c.NumInputs+gi, ot.Bit(vals, int(g.A))^ot.Bit(vals, int(g.B)))
		}
	}

	out := make([]uint8, len(c.Outputs))
	for i, w := range c.Outputs {
		out[i] = uint8(ot.Bit(vals, int(w)))
	}
	return out, nil
}

// andRound evaluates a batch of AND gates with one OT exchange per ordered
// party pair, entirely on packed words. Each peer direction accumulates
// into its own buffer; the buffers are XOR-folded after the barrier, so the
// hot path never contends on a shared accumulator.
func (p *Party) andRound(ctx context.Context, vals []uint64, pr *circuit.PackedRound, evalID, round int) error {
	nG := len(pr.Out)
	nW := ot.Words(nG)
	xs := make([]uint64, nW) // my shares of the A inputs, gathered
	ys := make([]uint64, nW) // my shares of the B inputs, gathered
	for k := range pr.Out {
		sh := uint(k) & 63
		xs[k>>6] |= ot.Bit(vals, int(pr.A[k])) << sh
		ys[k>>6] |= ot.Bit(vals, int(pr.B[k])) << sh
	}
	acc := make([]uint64, nW)
	for w := range acc {
		acc[w] = xs[w] & ys[w] // local diagonal term xᵢyᵢ
	}

	sent := make([][]uint64, p.n) // my pads r, per sender direction
	got := make([][]uint64, p.n)  // received cross-term shares, per receiver direction
	var mu sync.Mutex
	var wg sync.WaitGroup
	var firstErr error
	record := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	for j := 0; j < p.n; j++ {
		if j == p.me {
			continue
		}
		j := j
		wg.Add(2)
		// Sender direction me→j: contribute r, peer learns r ⊕ xs·(their y).
		go func() {
			defer wg.Done()
			r, err := ot.RandomWords(nG)
			if err != nil {
				record(fmt.Errorf("gmw: eval %d round %d pad draw for %d: %w", evalID, round, j, err))
				return
			}
			m1 := make([]uint64, nW)
			for w := range m1 {
				m1[w] = r[w] ^ xs[w]
			}
			if err := p.send[j].SendPacked(ctx, r, m1, nG); err != nil {
				record(fmt.Errorf("gmw: eval %d round %d send to %d: %w", evalID, round, j, err))
				return
			}
			sent[j] = r
		}()
		// Receiver direction j→me: select with my y shares.
		go func() {
			defer wg.Done()
			g, err := p.recv[j].ReceivePacked(ctx, ys, nG)
			if err != nil {
				record(fmt.Errorf("gmw: eval %d round %d recv from %d: %w", evalID, round, j, err))
				return
			}
			got[j] = g
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	for j := 0; j < p.n; j++ {
		if sent[j] != nil {
			ot.XorInto(acc, sent[j])
		}
		if got[j] != nil {
			ot.XorInto(acc, got[j])
		}
	}
	for k, w := range pr.Out {
		ot.SetBit(vals, int(w), ot.Bit(acc, k))
	}
	return nil
}

// Open reconstructs shared bits by broadcasting shares to all session
// members; every party learns the plaintext. DStress only ever opens the
// final noised aggregate (§3.6); intermediate wires stay shared.
func (p *Party) Open(ctx context.Context, shares []uint8) ([]uint8, error) {
	seq := p.seq
	p.seq++
	tag := network.Tag(p.cfg.Tag, "open", seq)
	packed := ot.PackBits(shares)
	for j := 0; j < p.n; j++ {
		if j != p.me {
			if err := p.ep.Send(p.cfg.Parties[j], tag, packed); err != nil {
				return nil, fmt.Errorf("gmw: open: %w", err)
			}
		}
	}
	out := make([]uint8, len(shares))
	copy(out, shares)
	for j := 0; j < p.n; j++ {
		if j == p.me {
			continue
		}
		data, err := p.ep.Recv(ctx, p.cfg.Parties[j], tag)
		if err != nil {
			return nil, fmt.Errorf("gmw: open: %w", err)
		}
		theirs := ot.UnpackBits(data, len(shares))
		for i := range out {
			out[i] ^= theirs[i]
		}
	}
	return out, nil
}
