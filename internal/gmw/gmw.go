// Package gmw implements the Goldreich–Micali–Wigderson protocol for
// semi-honest n-party computation of Boolean circuits over XOR shares.
//
// This is the MPC engine behind every DStress computation step: the members
// of a block hold XOR shares of the vertex state and incoming messages, run
// the update function's circuit through GMW, and end up with XOR shares of
// the new state and outgoing messages, never reconstructing any
// intermediate value (§3.3, §3.6). The paper's prototype uses the GMW
// implementation of Choi et al. under the Wysteria runtime (§5.1); this
// package is a from-scratch Go equivalent.
//
// Protocol recap. Every wire w carries a sharing ⟨w⟩ = (w₁,…,wₙ) with
// w = ⊕ᵢwᵢ:
//
//   - XOR gates are free: each party XORs its shares locally.
//   - The public constant 1 is shared as (1,0,…,0).
//   - An AND gate x∧y expands to ⊕ᵢxᵢyᵢ ⊕ ⊕_{i≠j} xᵢyⱼ. Party i computes
//     xᵢyᵢ locally; each cross term xᵢyⱼ is computed with one 1-of-2 OT in
//     which sender i inputs (r, r⊕xᵢ) for fresh random r and receiver j
//     selects with yⱼ, so the pair obtains an XOR sharing (r, r⊕xᵢyⱼ).
//
// All AND gates of one multiplicative-depth level are batched into a single
// message exchange per ordered party pair (the interaction schedule comes
// from circuit.Rounds), which is what makes the per-step latency of §5.2
// proportional to circuit depth rather than AND count.
//
// Collusion resistance matches the paper: with k+1 parties, any k colluders
// miss at least one share of every wire (GMW is secure against n−1
// semi-honest corruptions).
package gmw

import (
	"context"
	"crypto/rand"
	"fmt"
	"sync"

	"dstress/internal/circuit"
	"dstress/internal/group"
	"dstress/internal/network"
	"dstress/internal/ot"
)

// OTOption selects how the pairwise oblivious transfers are provisioned.
type OTOption interface{ otOption() }

// IKNPOT bootstraps real DH base OTs over Group and extends them with IKNP.
// Setup costs 2·λ base OTs per party pair; this is the configuration that
// models the paper's prototype faithfully.
type IKNPOT struct{ Group group.Group }

// DealerOT draws correlated randomness from a trusted-party broker
// (offline/online split). Online traffic is identical to IKNPOT minus the
// 16-byte-per-OT extension messages; see internal/ot for the argument that
// this preserves the TP's never-sees-private-data property.
type DealerOT struct{ Broker *ot.DealerBroker }

func (IKNPOT) otOption()   {}
func (DealerOT) otOption() {}

// Config describes one party's view of a GMW session.
type Config struct {
	// Parties lists the session members in a globally agreed order.
	Parties []network.NodeID
	// Index is this party's position in Parties.
	Index int
	// Transport is this party's attachment to the messaging layer (the
	// in-process hub endpoint or a tcpnet peer); its ID must equal
	// Parties[Index].
	Transport network.Transport
	// Tag namespaces this session's traffic.
	Tag string
	// OT selects the OT provisioning (IKNPOT or DealerOT).
	OT OTOption
}

// Party is one session member. All parties of a session must execute the
// same sequence of Evaluate/Open calls with the same circuits.
type Party struct {
	cfg  Config
	ep   network.Transport
	n    int
	me   int
	send map[int]*ot.BitSender   // ordered pair me→j
	recv map[int]*ot.BitReceiver // ordered pair j→me
	seq  int
}

// NewParty joins the session described by cfg. For IKNPOT the call blocks
// until all peers join (base-OT handshakes), so the n parties must call it
// concurrently; canceling ctx aborts a handshake stuck on an absent peer.
func NewParty(ctx context.Context, cfg Config) (*Party, error) {
	n := len(cfg.Parties)
	if n < 2 {
		return nil, fmt.Errorf("gmw: need at least 2 parties, got %d", n)
	}
	if cfg.Index < 0 || cfg.Index >= n {
		return nil, fmt.Errorf("gmw: index %d out of range", cfg.Index)
	}
	if cfg.Transport == nil {
		return nil, fmt.Errorf("gmw: nil transport")
	}
	if cfg.Transport.ID() != cfg.Parties[cfg.Index] {
		return nil, fmt.Errorf("gmw: transport belongs to node %d, party %d is node %d",
			cfg.Transport.ID(), cfg.Index, cfg.Parties[cfg.Index])
	}
	p := &Party{
		cfg:  cfg,
		ep:   cfg.Transport,
		n:    n,
		me:   cfg.Index,
		send: make(map[int]*ot.BitSender),
		recv: make(map[int]*ot.BitReceiver),
	}

	switch opt := cfg.OT.(type) {
	case DealerOT:
		for j := 0; j < n; j++ {
			if j == p.me {
				continue
			}
			// Broker keys are global node ids so distinct sessions over the
			// same broker stay distinct per pair... per (i,j) the stream is
			// shared across sessions, which is fine: both ends consume in
			// lockstep only within one session, so one broker must serve
			// one session. The vertex runtime allocates one broker per
			// block session.
			sTag := network.Tag(cfg.Tag, "ot", p.me, j)
			rTag := network.Tag(cfg.Tag, "ot", j, p.me)
			p.send[j] = ot.NewBitSender(opt.Broker.Sender(p.me, j), p.ep, cfg.Parties[j], sTag)
			p.recv[j] = ot.NewBitReceiver(opt.Broker.Receiver(j, p.me), p.ep, cfg.Parties[j], rTag)
		}
	case IKNPOT:
		// Run all 2(n-1) handshakes concurrently; they interleave freely
		// because tags separate the directions.
		var wg sync.WaitGroup
		var mu sync.Mutex
		var firstErr error
		record := func(err error) {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}
		for j := 0; j < n; j++ {
			if j == p.me {
				continue
			}
			j := j
			wg.Add(2)
			go func() {
				defer wg.Done()
				sTag := network.Tag(cfg.Tag, "ot", p.me, j)
				src, err := ot.NewIKNPSender(ctx, opt.Group, p.ep, cfg.Parties[j], sTag)
				if err != nil {
					record(err)
					return
				}
				mu.Lock()
				p.send[j] = ot.NewBitSender(src, p.ep, cfg.Parties[j], sTag)
				mu.Unlock()
			}()
			go func() {
				defer wg.Done()
				rTag := network.Tag(cfg.Tag, "ot", j, p.me)
				src, err := ot.NewIKNPReceiver(ctx, opt.Group, p.ep, cfg.Parties[j], rTag)
				if err != nil {
					record(err)
					return
				}
				mu.Lock()
				p.recv[j] = ot.NewBitReceiver(src, p.ep, cfg.Parties[j], rTag)
				mu.Unlock()
			}()
		}
		wg.Wait()
		if firstErr != nil {
			return nil, fmt.Errorf("gmw: OT setup: %w", firstErr)
		}
	default:
		return nil, fmt.Errorf("gmw: unknown OT option %T", cfg.OT)
	}
	return p, nil
}

// N returns the number of session parties.
func (p *Party) N() int { return p.n }

// Index returns this party's session index.
func (p *Party) Index() int { return p.me }

// Evaluate runs the circuit on this party's input shares and returns its
// shares of the outputs. The XOR over all parties' inputShares must equal
// the plaintext input bits; likewise for the returned output shares.
func (p *Party) Evaluate(ctx context.Context, c *circuit.Circuit, inputShares []uint8) ([]uint8, error) {
	if len(inputShares) != c.NumInputs {
		return nil, fmt.Errorf("gmw: got %d input shares, want %d", len(inputShares), c.NumInputs)
	}
	evalID := p.seq
	p.seq++

	vals := make([]uint8, c.NumWires())
	// Public constant one: party 0 holds the set share.
	if p.me == 0 {
		vals[circuit.WireOne] = 1
	}
	for i, b := range inputShares {
		if b > 1 {
			return nil, fmt.Errorf("gmw: input share %d is not a bit", i)
		}
		vals[2+i] = b
	}

	gateOut := func(gi int) int { return 2 + c.NumInputs + gi }
	evalLocal := func(gi int) {
		g := c.Gates[gi]
		vals[gateOut(gi)] = vals[g.A] ^ vals[g.B]
	}

	for r, round := range c.Rounds {
		if len(round.And) > 0 {
			if err := p.andRound(ctx, c, vals, round.And, evalID, r); err != nil {
				return nil, err
			}
		}
		for _, gi := range round.Local {
			evalLocal(gi)
		}
	}

	out := make([]uint8, len(c.Outputs))
	for i, w := range c.Outputs {
		out[i] = vals[w]
	}
	return out, nil
}

// andRound evaluates a batch of AND gates with one OT exchange per ordered
// party pair.
func (p *Party) andRound(ctx context.Context, c *circuit.Circuit, vals []uint8, gates []int, evalID, round int) error {
	nG := len(gates)
	xs := make([]uint8, nG) // my shares of the A inputs
	ys := make([]uint8, nG) // my shares of the B inputs
	acc := make([]uint8, nG)
	for k, gi := range gates {
		g := c.Gates[gi]
		xs[k] = vals[g.A]
		ys[k] = vals[g.B]
		acc[k] = xs[k] & ys[k]
	}

	var mu sync.Mutex
	var wg sync.WaitGroup
	var firstErr error
	record := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	for j := 0; j < p.n; j++ {
		if j == p.me {
			continue
		}
		j := j
		wg.Add(2)
		// Sender direction me→j: contribute r, peer learns r ⊕ xs·(their y).
		go func() {
			defer wg.Done()
			r := randomBits(nG)
			m1 := make([]uint8, nG)
			for k := range m1 {
				m1[k] = r[k] ^ xs[k]
			}
			if err := p.send[j].SendBits(ctx, r, m1); err != nil {
				record(fmt.Errorf("gmw: eval %d round %d send to %d: %w", evalID, round, j, err))
				return
			}
			mu.Lock()
			for k := range acc {
				acc[k] ^= r[k]
			}
			mu.Unlock()
		}()
		// Receiver direction j→me: select with my y shares.
		go func() {
			defer wg.Done()
			got, err := p.recv[j].ReceiveBits(ctx, ys)
			if err != nil {
				record(fmt.Errorf("gmw: eval %d round %d recv from %d: %w", evalID, round, j, err))
				return
			}
			mu.Lock()
			for k := range acc {
				acc[k] ^= got[k]
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	for k, gi := range gates {
		vals[2+c.NumInputs+gi] = acc[k]
	}
	return nil
}

// Open reconstructs shared bits by broadcasting shares to all session
// members; every party learns the plaintext. DStress only ever opens the
// final noised aggregate (§3.6); intermediate wires stay shared.
func (p *Party) Open(ctx context.Context, shares []uint8) ([]uint8, error) {
	seq := p.seq
	p.seq++
	tag := network.Tag(p.cfg.Tag, "open", seq)
	packed := ot.PackBits(shares)
	for j := 0; j < p.n; j++ {
		if j != p.me {
			if err := p.ep.Send(p.cfg.Parties[j], tag, packed); err != nil {
				return nil, fmt.Errorf("gmw: open: %w", err)
			}
		}
	}
	out := make([]uint8, len(shares))
	copy(out, shares)
	for j := 0; j < p.n; j++ {
		if j == p.me {
			continue
		}
		data, err := p.ep.Recv(ctx, p.cfg.Parties[j], tag)
		if err != nil {
			return nil, fmt.Errorf("gmw: open: %w", err)
		}
		theirs := ot.UnpackBits(data, len(shares))
		for i := range out {
			out[i] ^= theirs[i]
		}
	}
	return out, nil
}

// randomBits returns n unpacked uniform bits from crypto/rand.
func randomBits(n int) []uint8 {
	buf := make([]byte, (n+7)/8)
	if _, err := rand.Read(buf); err != nil {
		panic(fmt.Sprintf("gmw: entropy failure: %v", err))
	}
	return ot.UnpackBits(buf, n)
}
