package gmw

import (
	"context"
	mrand "math/rand"
	"sync"
	"testing"
	"testing/quick"

	"dstress/internal/circuit"
	"dstress/internal/group"
	"dstress/internal/network"
	"dstress/internal/ot"
	"dstress/internal/secretshare"
)

// runSession evaluates circuit c on plaintext inputs with n parties and
// returns the opened output bits, checking that all parties agree.
func runSession(t testing.TB, n int, c *circuit.Circuit, inputs []uint8, otOpt func() OTOption) []uint8 {
	t.Helper()
	net := network.New()
	parties := make([]network.NodeID, n)
	for i := range parties {
		parties[i] = network.NodeID(i + 1)
	}
	// Share each input bit across the parties.
	shares := make([][]uint8, n)
	for i := range shares {
		shares[i] = make([]uint8, len(inputs))
	}
	for b, v := range inputs {
		sh := secretshare.SplitXOR(uint64(v), n, 1)
		for i := range sh {
			shares[i][b] = uint8(sh[i])
		}
	}

	results := make([][]uint8, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	opt := otOpt()
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := NewParty(context.Background(), Config{
				Parties: parties, Index: i, Transport: net.Endpoint(parties[i]), Tag: "sess", OT: opt,
			})
			if err != nil {
				errs[i] = err
				return
			}
			outShares, err := p.Evaluate(context.Background(), c, shares[i])
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = p.Open(context.Background(), outShares)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("party %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		for b := range results[0] {
			if results[i][b] != results[0][b] {
				t.Fatalf("parties 0 and %d disagree on output bit %d", i, b)
			}
		}
	}
	return results[0]
}

func dealerOpt() OTOption { return DealerOT{Broker: ot.NewDealerBroker()} }
func iknpOpt() OTOption   { return IKNPOT{Group: group.ModP256()} }

func TestANDTruthTable(t *testing.T) {
	b := circuit.NewBuilder()
	x := b.Input()
	y := b.Input()
	b.Output(b.And(x, y))
	c := b.Build()
	for _, n := range []int{2, 3, 5} {
		for _, tc := range [][3]uint8{{0, 0, 0}, {0, 1, 0}, {1, 0, 0}, {1, 1, 1}} {
			got := runSession(t, n, c, []uint8{tc[0], tc[1]}, dealerOpt)
			if got[0] != tc[2] {
				t.Errorf("n=%d: %d∧%d = %d, want %d", n, tc[0], tc[1], got[0], tc[2])
			}
		}
	}
}

func TestXOROnlyCircuit(t *testing.T) {
	b := circuit.NewBuilder()
	x := b.Input()
	y := b.Input()
	z := b.Input()
	b.Output(b.Xor(b.Xor(x, y), z))
	b.Output(b.Not(x))
	c := b.Build()
	got := runSession(t, 3, c, []uint8{1, 0, 1}, dealerOpt)
	if got[0] != 0 || got[1] != 0 {
		t.Errorf("got %v", got)
	}
}

func TestAdderMatchesPlaintext(t *testing.T) {
	b := circuit.NewBuilder()
	x := b.InputWord(16)
	y := b.InputWord(16)
	b.OutputWord(b.Add(x, y))
	c := b.Build()
	in := append(circuit.EncodeWord(12345, 16), circuit.EncodeWord(-340, 16)...)
	want, err := c.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	got := runSession(t, 3, c, in, dealerOpt)
	if circuit.DecodeWordS(got) != circuit.DecodeWordS(want) {
		t.Errorf("GMW add = %d, plaintext = %d",
			circuit.DecodeWordS(got), circuit.DecodeWordS(want))
	}
}

func TestMulDivCircuitGMW(t *testing.T) {
	// A deeper circuit: (x*y) and x/y over 12-bit words.
	b := circuit.NewBuilder()
	x := b.InputWord(12)
	y := b.InputWord(12)
	b.OutputWord(b.Mul(x, y))
	b.OutputWord(b.DivU(x, y))
	c := b.Build()
	in := append(circuit.EncodeWord(97, 12), circuit.EncodeWord(13, 12)...)
	got := runSession(t, 3, c, in, dealerOpt)
	if v := circuit.DecodeWordU(got[:12]); v != (97*13)&0xfff {
		t.Errorf("mul = %d, want %d", v, (97*13)&0xfff)
	}
	if v := circuit.DecodeWordU(got[12:]); v != 97/13 {
		t.Errorf("div = %d, want %d", v, 97/13)
	}
}

func TestQuickGMWMatchesPlaintext(t *testing.T) {
	// Property: for random inputs, a mixed circuit evaluates identically
	// under GMW and plaintext evaluation.
	b := circuit.NewBuilder()
	x := b.InputWord(8)
	y := b.InputWord(8)
	sum := b.Add(x, y)
	prod := b.Mul(x, y)
	lt := b.LessS(x, y)
	b.OutputWord(b.MuxWord(lt, sum, prod))
	c := b.Build()

	f := func(xv, yv int8) bool {
		in := append(circuit.EncodeWord(int64(xv), 8), circuit.EncodeWord(int64(yv), 8)...)
		want, err := c.Eval(in)
		if err != nil {
			return false
		}
		got := runSession(t, 3, c, in, dealerOpt)
		return circuit.DecodeWordS(got) == circuit.DecodeWordS(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestIKNPSession(t *testing.T) {
	// Full IKNP path (real base OTs) with 3 parties on a small circuit.
	b := circuit.NewBuilder()
	x := b.InputWord(8)
	y := b.InputWord(8)
	b.OutputWord(b.Mul(x, y))
	c := b.Build()
	in := append(circuit.EncodeWord(9, 8), circuit.EncodeWord(11, 8)...)
	got := runSession(t, 3, c, in, iknpOpt)
	if v := circuit.DecodeWordU(got); v != 99 {
		t.Errorf("9*11 = %d", v)
	}
}

func TestMultipleEvaluationsPerSession(t *testing.T) {
	// A session must support repeated Evaluate/Open (DStress runs one MPC
	// per iteration in the same block).
	bld := circuit.NewBuilder()
	x := bld.InputWord(8)
	y := bld.InputWord(8)
	bld.OutputWord(bld.Add(x, y))
	c := bld.Build()

	const n = 3
	net := network.New()
	parties := []network.NodeID{1, 2, 3}
	broker := ot.NewDealerBroker()

	var wg sync.WaitGroup
	outs := make([][]int64, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := NewParty(context.Background(), Config{Parties: parties, Index: i, Transport: net.Endpoint(parties[i]), Tag: "multi", OT: DealerOT{Broker: broker}})
			if err != nil {
				errs[i] = err
				return
			}
			for round := 0; round < 4; round++ {
				var inShare []uint8
				// Party 0 supplies the full input; others zero shares.
				xv, yv := int64(round*10), int64(round+1)
				full := append(circuit.EncodeWord(xv, 8), circuit.EncodeWord(yv, 8)...)
				if i == 0 {
					inShare = full
				} else {
					inShare = make([]uint8, len(full))
				}
				oShares, err := p.Evaluate(context.Background(), c, inShare)
				if err != nil {
					errs[i] = err
					return
				}
				open, err := p.Open(context.Background(), oShares)
				if err != nil {
					errs[i] = err
					return
				}
				outs[i] = append(outs[i], circuit.DecodeWordS(open))
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("party %d: %v", i, err)
		}
	}
	for round := 0; round < 4; round++ {
		want := int64(round*10) + int64(round+1)
		for i := 0; i < n; i++ {
			if outs[i][round] != want {
				t.Errorf("party %d round %d: got %d, want %d", i, round, outs[i][round], want)
			}
		}
	}
}

func TestEvaluateValidatesInput(t *testing.T) {
	b := circuit.NewBuilder()
	x := b.Input()
	b.Output(x)
	c := b.Build()
	net := network.New()
	broker := ot.NewDealerBroker()
	var p0, p1 *Party
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		p0, _ = NewParty(context.Background(), Config{Parties: []network.NodeID{1, 2}, Index: 0, Transport: net.Endpoint(1), Tag: "v", OT: DealerOT{Broker: broker}})
	}()
	go func() {
		defer wg.Done()
		p1, _ = NewParty(context.Background(), Config{Parties: []network.NodeID{1, 2}, Index: 1, Transport: net.Endpoint(2), Tag: "v", OT: DealerOT{Broker: broker}})
	}()
	wg.Wait()
	if p0 == nil || p1 == nil {
		t.Fatal("setup failed")
	}
	if _, err := p0.Evaluate(context.Background(), c, []uint8{}); err == nil {
		t.Error("short input accepted")
	}
	if _, err := p0.Evaluate(context.Background(), c, []uint8{2}); err == nil {
		t.Error("non-bit share accepted")
	}
}

func TestNewPartyValidation(t *testing.T) {
	net := network.New()
	if _, err := NewParty(context.Background(), Config{Parties: []network.NodeID{1}, Index: 0, Transport: net.Endpoint(1), OT: dealerOpt()}); err == nil {
		t.Error("single-party session accepted")
	}
	if _, err := NewParty(context.Background(), Config{Parties: []network.NodeID{1, 2}, Index: 5, Transport: net.Endpoint(1), OT: dealerOpt()}); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := NewParty(context.Background(), Config{Parties: []network.NodeID{1, 2}, Index: 0, Transport: net.Endpoint(1), OT: nil}); err == nil {
		t.Error("nil OT option accepted")
	}
}

func TestIntermediatesStayShared(t *testing.T) {
	// Sanity check on the share representation: with 3 parties, no single
	// party's wire share should consistently equal the plaintext AND value
	// across runs (it stays masked by the OT randomness).
	b := circuit.NewBuilder()
	x := b.Input()
	y := b.Input()
	b.Output(b.And(x, y))
	c := b.Build()

	matches := 0
	const trials = 32
	for trial := 0; trial < trials; trial++ {
		net := network.New()
		parties := []network.NodeID{1, 2, 3}
		broker := ot.NewDealerBroker()
		shares := make([][]uint8, 3)
		// Plaintext inputs are (1,1) so the AND value is 1.
		for b := 0; b < 2; b++ {
			sh := secretshare.SplitXOR(1, 3, 1)
			for i := range sh {
				if shares[i] == nil {
					shares[i] = make([]uint8, 2)
				}
				shares[i][b] = uint8(sh[i])
			}
		}
		var wg sync.WaitGroup
		outShares := make([]uint8, 3)
		for i := 0; i < 3; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				p, err := NewParty(context.Background(), Config{Parties: parties, Index: i, Transport: net.Endpoint(parties[i]), Tag: "mask", OT: DealerOT{Broker: broker}})
				if err != nil {
					t.Error(err)
					return
				}
				o, err := p.Evaluate(context.Background(), c, shares[i])
				if err != nil {
					t.Error(err)
					return
				}
				outShares[i] = o[0]
			}()
		}
		wg.Wait()
		if outShares[0]^outShares[1]^outShares[2] != 1 {
			t.Fatal("shares do not reconstruct the AND value")
		}
		if outShares[0] == 1 {
			matches++
		}
	}
	if matches == 0 || matches == trials {
		t.Errorf("party 0's share equalled a fixed value in %d/%d trials; shares look unmasked", matches, trials)
	}
}

func TestTrafficScalesWithParties(t *testing.T) {
	// Online AND-gate traffic grows ~quadratically in total but linearly
	// per node (§5.3's observation).
	perNode := map[int]float64{}
	for _, n := range []int{3, 6} {
		b := circuit.NewBuilder()
		x := b.InputWord(16)
		y := b.InputWord(16)
		b.OutputWord(b.Mul(x, y))
		c := b.Build()
		net := network.New()
		parties := make([]network.NodeID, n)
		for i := range parties {
			parties[i] = network.NodeID(i + 1)
		}
		broker := ot.NewDealerBroker()
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				p, err := NewParty(context.Background(), Config{Parties: parties, Index: i, Transport: net.Endpoint(parties[i]), Tag: "tr", OT: DealerOT{Broker: broker}})
				if err != nil {
					t.Error(err)
					return
				}
				in := make([]uint8, c.NumInputs)
				if _, err := p.Evaluate(context.Background(), c, in); err != nil {
					t.Error(err)
				}
			}()
		}
		wg.Wait()
		perNode[n] = net.AvgNodeBytes()
	}
	ratio := perNode[6] / perNode[3]
	// Per-node traffic should roughly double going from 3 to 6 parties
	// (each node talks to n-1 peers: 5/2 = 2.5x at most).
	if ratio < 1.5 || ratio > 3.5 {
		t.Errorf("per-node traffic ratio 6v3 parties = %.2f, expected ~2-2.5", ratio)
	}
}

func BenchmarkGMW3PartyMul16Dealer(b *testing.B) {
	bld := circuit.NewBuilder()
	x := bld.InputWord(16)
	y := bld.InputWord(16)
	bld.OutputWord(bld.Mul(x, y))
	c := bld.Build()
	in := append(circuit.EncodeWord(1234, 16), circuit.EncodeWord(567, 16)...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runSession(b, 3, c, in, dealerOpt)
	}
}

// runSubstrateSession evaluates c with n parties over per-node OT
// substrates (the deployment configuration), returning the opened bits and
// the substrates for handshake-count inspection.
func runSubstrateSession(t testing.TB, n int, c *circuit.Circuit, inputs []uint8, sessions int) ([]uint8, []*ot.Substrate) {
	t.Helper()
	net := network.New()
	parties := make([]network.NodeID, n)
	subs := make([]*ot.Substrate, n)
	for i := range parties {
		parties[i] = network.NodeID(i + 1)
		subs[i] = ot.NewSubstrate(group.ModP256(), net.Endpoint(parties[i]))
	}
	shares := make([][]uint8, n)
	for i := range shares {
		shares[i] = make([]uint8, len(inputs))
	}
	for b, v := range inputs {
		sh := secretshare.SplitXOR(uint64(v), n, 1)
		for i := range sh {
			shares[i][b] = uint8(sh[i])
		}
	}
	var out []uint8
	for s := 0; s < sessions; s++ {
		results := make([][]uint8, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				p, err := NewParty(context.Background(), Config{
					Parties: parties, Index: i, Transport: net.Endpoint(parties[i]),
					Tag: network.Tag("sess", s), OT: SubstrateOT{Sub: subs[i]},
				})
				if err != nil {
					errs[i] = err
					return
				}
				outShares, err := p.Evaluate(context.Background(), c, shares[i])
				if err != nil {
					errs[i] = err
					return
				}
				results[i], errs[i] = p.Open(context.Background(), outShares)
			}()
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("session %d party %d: %v", s, i, err)
			}
		}
		for i := 1; i < n; i++ {
			for b := range results[0] {
				if results[i][b] != results[0][b] {
					t.Fatalf("session %d: parties 0 and %d disagree on bit %d", s, i, b)
				}
			}
		}
		out = results[0]
	}
	return out, subs
}

func TestSubstrateSession(t *testing.T) {
	// Full substrate path (real base OTs, PRF-derived session streams) with
	// 3 parties on a deep circuit.
	b := circuit.NewBuilder()
	x := b.InputWord(8)
	y := b.InputWord(8)
	b.OutputWord(b.Mul(x, y))
	c := b.Build()
	in := append(circuit.EncodeWord(9, 8), circuit.EncodeWord(11, 8)...)
	got, _ := runSubstrateSession(t, 3, c, in, 1)
	if v := circuit.DecodeWordU(got); v != 99 {
		t.Errorf("9*11 = %d", v)
	}
}

func TestSubstrateHandshakeCountAcrossSessions(t *testing.T) {
	// The regression this PR exists to prevent: standing up S sessions over
	// the same party set must run exactly one base-OT handshake per ordered
	// pair, not S of them.
	b := circuit.NewBuilder()
	x := b.Input()
	y := b.Input()
	b.Output(b.And(x, y))
	c := b.Build()
	const n, sessions = 3, 4
	_, subs := runSubstrateSession(t, n, c, []uint8{1, 1}, sessions)
	var total int64
	for i, s := range subs {
		if h := s.Handshakes(); h != int64(n-1) {
			t.Errorf("node %d: %d handshakes across %d sessions, want %d", i, h, sessions, n-1)
		}
		total += s.Handshakes()
	}
	if want := int64(n * (n - 1)); total != want {
		t.Errorf("deployment ran %d handshakes, want %d (= ordered pairs)", total, want)
	}
}

// randomCircuit builds a random mixed XOR/AND circuit over nIn inputs with
// nGates gates wired to earlier wires, every wire exported, so the packed
// evaluator's gather/scatter paths see arbitrary topologies.
func randomCircuit(rng *mrand.Rand, nIn, nGates int) *circuit.Circuit {
	b := circuit.NewBuilder()
	wires := []circuit.Wire{b.Zero(), b.One()}
	for i := 0; i < nIn; i++ {
		wires = append(wires, b.Input())
	}
	for g := 0; g < nGates; g++ {
		a := wires[rng.Intn(len(wires))]
		w := wires[rng.Intn(len(wires))]
		var out circuit.Wire
		if rng.Intn(2) == 0 {
			out = b.Xor(a, w)
		} else {
			out = b.And(a, w)
		}
		wires = append(wires, out)
	}
	// Export a spread of wires, always including the last.
	for i := 2; i < len(wires); i += 3 {
		b.Output(wires[i])
	}
	b.Output(wires[len(wires)-1])
	return b.Build()
}

func TestPackedEvaluateEquivalence(t *testing.T) {
	// Equivalence pin: the packed word-level Evaluate must agree with the
	// bit-at-a-time reference semantics (circuit.Eval) on random circuits
	// and random inputs, across party counts.
	rng := mrand.New(mrand.NewSource(7))
	for trial := 0; trial < 6; trial++ {
		nIn := 3 + rng.Intn(12)
		c := randomCircuit(rng, nIn, 20+rng.Intn(120))
		in := make([]uint8, nIn)
		for i := range in {
			in[i] = uint8(rng.Intn(2))
		}
		want, err := c.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		n := 2 + trial%3
		got := runSession(t, n, c, in, dealerOpt)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (%d parties, %d gates): output bit %d = %d, reference %d",
					trial, n, len(c.Gates), i, got[i], want[i])
			}
		}
	}
}

func BenchmarkEvaluateMul16Dealer(b *testing.B) {
	// Steady-state Evaluate cost over a standing session (per-iteration hot
	// path): 16-bit multiplier, 3 parties, dealer OTs.
	bld := circuit.NewBuilder()
	x := bld.InputWord(16)
	y := bld.InputWord(16)
	bld.OutputWord(bld.Mul(x, y))
	c := bld.Build()
	const n = 3
	net := network.New()
	parties := []network.NodeID{1, 2, 3}
	broker := ot.NewDealerBroker()
	ps := make([]*Party, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			ps[i], _ = NewParty(context.Background(), Config{
				Parties: parties, Index: i, Transport: net.Endpoint(parties[i]),
				Tag: "bench", OT: DealerOT{Broker: broker},
			})
		}()
	}
	wg.Wait()
	in := make([]uint8, c.NumInputs)
	b.ReportAllocs()
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		var ewg sync.WaitGroup
		for i := 0; i < n; i++ {
			i := i
			ewg.Add(1)
			go func() {
				defer ewg.Done()
				if _, err := ps[i].Evaluate(context.Background(), c, in); err != nil {
					b.Error(err)
				}
			}()
		}
		ewg.Wait()
	}
}

func BenchmarkSubstrateSessionSetup(b *testing.B) {
	// Deployment-open cost: S=4 sessions over one 3-party pair set. With
	// the substrate the base-OT bootstrap is paid once per ordered pair,
	// so adding sessions adds only PRF derivations.
	bld := circuit.NewBuilder()
	x := bld.Input()
	y := bld.Input()
	bld.Output(bld.And(x, y))
	c := bld.Build()
	b.ReportAllocs()
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		runSubstrateSession(b, 3, c, []uint8{1, 1}, 4)
	}
}
