// Package network provides the simulated transport that DStress nodes
// communicate over.
//
// The paper's evaluation (§5) runs nodes on EC2 instances and reports two
// quantities per experiment: computation time and traffic per node. This
// package reproduces the measurement infrastructure: every node owns an
// Endpoint, messages are delivered in-process through unbounded mailboxes
// (so protocol goroutines can never deadlock on back-pressure), and the hub
// keeps per-node byte and message counters that the benchmark harness reads
// after a run. A configurable per-message header overhead models framing
// (TCP/IP + TLS record) so traffic numbers are comparable in spirit to the
// paper's packet captures.
//
// Messages are addressed by (sender, receiver, tag). Tags multiplex the many
// concurrent protocol instances a node participates in — a node may be a
// member of several blocks (§5.4 observes nodes "handle multiple blocks in
// parallel") plus the relay for its own vertex's transfers.
package network

import (
	"context"
	"fmt"
	"strings"
	"sync"
)

// NodeID identifies a node (a participant machine, not a vertex).
type NodeID int32

// Transport is one node's view of the messaging layer: point-to-point
// (peer, tag)-addressed messages with per-(sender, tag) FIFO ordering, plus
// traffic counters. Two implementations exist: the in-process hub Endpoint
// in this package (simulation and tests) and tcpnet.Peer (real deployments
// over TCP). Protocol layers (ot, gmw, transfer, vertex, cluster) are
// written against this interface, so the same protocol code runs unchanged
// in a single process or across machines.
//
// Send must not block on the receiver making progress (implementations
// buffer unboundedly), because MPC rounds have all-to-all traffic where
// everyone sends before anyone receives. Recv blocks until a matching
// message arrives, the context is canceled, or the transport is shut down;
// the latter two return an error, so a dead peer or a canceled run
// surfaces as a failure instead of a permanent hang.
type Transport interface {
	// ID returns the node this transport belongs to.
	ID() NodeID
	// Send delivers payload to node `to` under tag. The payload is copied
	// (or serialized) before Send returns, so callers may reuse the buffer.
	Send(to NodeID, tag string, payload []byte) error
	// Recv blocks until a message from `from` with the given tag arrives or
	// ctx is done, in which case it returns ctx's error. Messages queued
	// before cancellation are still delivered first.
	Recv(ctx context.Context, from NodeID, tag string) ([]byte, error)
	// Stats returns this node's traffic counters.
	Stats() Stats
}

// DefaultHeaderOverhead is the per-message framing cost, in bytes, added to
// traffic counters: a conservative stand-in for TCP/IP+TLS framing.
const DefaultHeaderOverhead = 64

// Network is the in-process message hub.
type Network struct {
	mu        sync.Mutex
	endpoints map[NodeID]*Endpoint
	overhead  int

	// Traffic accounting.
	sentBytes map[NodeID]int64
	recvBytes map[NodeID]int64
	sentMsgs  map[NodeID]int64
	// Per-tag-prefix accounting: which protocol layer the bytes belong to
	// (first "/"-separated tag component — "blk", "tx", "aggsh", … — or
	// "q/<id>/<layer>" for query-rooted tags).
	tagStats map[string]TagStat
	// Per-query accounting, keyed by query root ("q/<id>"): total bytes and
	// per-node sent+received bytes, so overlapping queries on one hub each
	// get their own phase/traffic numbers.
	queryStats map[string]*queryStat
}

type queryStat struct {
	total     int64
	nodeBytes map[NodeID]int64 // sent+received per node
}

// New creates an empty network with the default header overhead.
func New() *Network {
	return &Network{
		endpoints: make(map[NodeID]*Endpoint),
		overhead:  DefaultHeaderOverhead,
		sentBytes: make(map[NodeID]int64),
		recvBytes: make(map[NodeID]int64),
		sentMsgs:  make(map[NodeID]int64),
		tagStats:  make(map[string]TagStat),

		queryStats: make(map[string]*queryStat),
	}
}

// SetHeaderOverhead overrides the per-message framing cost (bytes). It must
// be called before traffic starts flowing.
func (n *Network) SetHeaderOverhead(b int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.overhead = b
}

// Endpoint returns (creating if necessary) the endpoint for id.
func (n *Network) Endpoint(id NodeID) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if e, ok := n.endpoints[id]; ok {
		return e
	}
	e := &Endpoint{net: n, id: id, boxes: make(map[boxKey]*mailbox)}
	n.endpoints[id] = e
	return e
}

func (n *Network) account(from, to NodeID, tag string, payload int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	total := int64(payload + n.overhead)
	n.sentBytes[from] += total
	n.recvBytes[to] += total
	n.sentMsgs[from]++
	ts := n.tagStats[TagPrefix(tag)]
	ts.BytesSent += total
	ts.BytesReceived += total // in-process delivery: every sent byte arrives
	ts.MessagesSent++
	n.tagStats[TagPrefix(tag)] = ts
	if root := QueryRoot(tag); root != "" {
		qs, ok := n.queryStats[root]
		if !ok {
			qs = &queryStat{nodeBytes: make(map[NodeID]int64)}
			n.queryStats[root] = qs
		}
		qs.total += total
		qs.nodeBytes[from] += total
		qs.nodeBytes[to] += total
	}
}

// Stats is a snapshot of a node's traffic counters.
type Stats struct {
	BytesSent     int64
	BytesReceived int64
	MessagesSent  int64
}

// TagStat aggregates the traffic carried under one tag prefix — the
// protocol layer the bytes belong to. On the in-process hub sent and
// received are equal; on tcpnet they are measured independently per side.
type TagStat struct {
	BytesSent     int64
	BytesReceived int64
	MessagesSent  int64
}

// TagTracker is optionally implemented by transports that keep per-tag-
// prefix traffic counters (the hub Network and tcpnet.Peer both do). It is
// deliberately NOT part of Transport: the Transport contract is frozen by
// the networktest conformance suite, and observability is an optional
// capability discovered by type assertion.
type TagTracker interface {
	TagStats() map[string]TagStat
}

// TagPrefix returns the component a tag's traffic is aggregated under. For
// plain tags it is the first "/"-separated component: the coarse protocol
// layer ("blk", "tx", "init", "aggsh", …). For query-rooted tags
// ("q/<id>/<layer>/...") it keeps the first three components, so counters
// stay separable per layer AND per query, and a finished query's whole
// counter set can be retired by its "q/<id>" root.
func TagPrefix(tag string) string {
	i := strings.IndexByte(tag, '/')
	if i < 0 {
		return tag
	}
	if tag[:i] != "q" {
		return tag[:i]
	}
	rest := tag[i+1:]
	j := strings.IndexByte(rest, '/')
	if j < 0 {
		return tag
	}
	layer := rest[j+1:]
	if k := strings.IndexByte(layer, '/'); k >= 0 {
		return tag[:i+1+j+1+k]
	}
	return tag
}

// QueryRoot returns the "q/<id>" namespace a tag lives under, or "" for
// tags outside any query (setup handshakes, control traffic).
func QueryRoot(tag string) string {
	if !strings.HasPrefix(tag, "q/") {
		return ""
	}
	if j := strings.IndexByte(tag[2:], '/'); j >= 0 {
		return tag[:2+j]
	}
	return tag
}

// TagRetirer is optionally implemented by transports that can retire the
// counters and mailboxes accumulated under one tag namespace (a finished
// query's "q/<id>" root). Like TagTracker it is discovered by type
// assertion, keeping the Transport contract frozen. Without retirement a
// standing fleet would leak one counter set and one set of drained
// mailboxes per query served.
type TagRetirer interface {
	RetireTagPrefix(prefix string)
}

// TagStats returns a snapshot of the per-tag-prefix traffic counters.
func (n *Network) TagStats() map[string]TagStat {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[string]TagStat, len(n.tagStats))
	for k, v := range n.tagStats {
		out[k] = v
	}
	return out
}

// NodeStats returns the traffic snapshot for one node.
func (n *Network) NodeStats(id NodeID) Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return Stats{
		BytesSent:     n.sentBytes[id],
		BytesReceived: n.recvBytes[id],
		MessagesSent:  n.sentMsgs[id],
	}
}

// TotalBytes returns the sum of bytes sent by all nodes.
func (n *Network) TotalBytes() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	var t int64
	for _, b := range n.sentBytes {
		t += b
	}
	return t
}

// MaxNodeBytes returns the largest per-node sent+received byte count: the
// "traffic per node" quantity Figures 4–6 plot.
func (n *Network) MaxNodeBytes() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	var m int64
	for id := range n.endpoints {
		if v := n.sentBytes[id] + n.recvBytes[id]; v > m {
			m = v
		}
	}
	return m
}

// AvgNodeBytes returns the mean per-node sent+received byte count over all
// endpoints that exist.
func (n *Network) AvgNodeBytes() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.endpoints) == 0 {
		return 0
	}
	var t int64
	for id := range n.endpoints {
		t += n.sentBytes[id] + n.recvBytes[id]
	}
	return float64(t) / float64(len(n.endpoints))
}

// QueryBytes returns the total bytes carried so far under one query root
// ("q/<id>"). Concurrent queries each see only their own traffic.
func (n *Network) QueryBytes(root string) int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if qs, ok := n.queryStats[root]; ok {
		return qs.total
	}
	return 0
}

// QueryMaxNodeBytes returns the largest per-node sent+received byte count
// attributable to one query root.
func (n *Network) QueryMaxNodeBytes(root string) int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	qs, ok := n.queryStats[root]
	if !ok {
		return 0
	}
	var m int64
	for _, v := range qs.nodeBytes {
		if v > m {
			m = v
		}
	}
	return m
}

// QueryAvgNodeBytes returns the mean per-node sent+received byte count for
// one query root, averaged over all endpoints that exist (idle nodes count
// as zero, matching AvgNodeBytes).
func (n *Network) QueryAvgNodeBytes(root string) float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.endpoints) == 0 {
		return 0
	}
	qs, ok := n.queryStats[root]
	if !ok {
		return 0
	}
	var t int64
	for _, v := range qs.nodeBytes {
		t += v
	}
	return float64(t) / float64(len(n.endpoints))
}

// RetireTagPrefix drops every counter and mailbox filed under prefix (a
// component boundary: "q/3" retires "q/3" and "q/3/...", never "q/30").
// Called after a query's result is reported so standing hubs don't grow a
// counter set and mailbox set per query served. Node-level counters
// (sentBytes &c.) are cumulative by design and are not touched.
func (n *Network) RetireTagPrefix(prefix string) {
	n.mu.Lock()
	for k := range n.tagStats {
		if tagUnder(k, prefix) {
			delete(n.tagStats, k)
		}
	}
	delete(n.queryStats, prefix)
	eps := make([]*Endpoint, 0, len(n.endpoints))
	for _, e := range n.endpoints {
		eps = append(eps, e)
	}
	n.mu.Unlock()
	// Sweep mailboxes outside n.mu: Endpoint.box takes only e.mu.
	for _, e := range eps {
		e.mu.Lock()
		for k := range e.boxes {
			if tagUnder(k.tag, prefix) {
				delete(e.boxes, k)
			}
		}
		e.mu.Unlock()
	}
}

// tagUnder reports whether tag equals prefix or lives under it at a "/"
// component boundary.
func tagUnder(tag, prefix string) bool {
	return tag == prefix || (strings.HasPrefix(tag, prefix) && len(tag) > len(prefix) && tag[len(prefix)] == '/')
}

// ResetStats zeroes all traffic counters (between experiment phases).
func (n *Network) ResetStats() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.sentBytes = make(map[NodeID]int64)
	n.recvBytes = make(map[NodeID]int64)
	n.sentMsgs = make(map[NodeID]int64)
	n.tagStats = make(map[string]TagStat)
	n.queryStats = make(map[string]*queryStat)
}

// ---------------------------------------------------------------------------
// Endpoint and mailboxes
// ---------------------------------------------------------------------------

type boxKey struct {
	from NodeID
	tag  string
}

// mailbox is an unbounded FIFO queue guarded by a condition variable.
// Unbounded buffering is deliberate: GMW rounds have all-to-all traffic and
// bounded channels could deadlock when two parties send before receiving.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue [][]byte
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(p []byte) {
	m.mu.Lock()
	m.queue = append(m.queue, p)
	m.mu.Unlock()
	m.cond.Signal()
}

func (m *mailbox) get(ctx context.Context) ([]byte, error) {
	m.mu.Lock()
	// Fast path: a queued message is delivered even when ctx is already
	// done, matching the drain-before-fail semantics of tcpnet.
	if len(m.queue) > 0 {
		p := m.queue[0]
		m.queue = m.queue[1:]
		m.mu.Unlock()
		return p, nil
	}
	m.mu.Unlock()
	if ctx.Done() != nil {
		// Wake the condition variable when ctx fires. Broadcasting under
		// the lock is essential: it guarantees the waiter is either parked
		// in Wait or has not yet re-checked ctx.Err, so no wakeup is lost.
		stop := context.AfterFunc(ctx, func() {
			m.mu.Lock()
			m.cond.Broadcast()
			m.mu.Unlock()
		})
		defer stop()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m.cond.Wait()
	}
	p := m.queue[0]
	m.queue = m.queue[1:]
	return p, nil
}

// Endpoint is one node's attachment to the network. It is the in-process
// Transport implementation.
type Endpoint struct {
	net *Network
	id  NodeID

	mu    sync.Mutex
	boxes map[boxKey]*mailbox
}

var _ Transport = (*Endpoint)(nil)

// ID returns the node id this endpoint belongs to.
func (e *Endpoint) ID() NodeID { return e.id }

// Network returns the owning hub (for stats access).
func (e *Endpoint) Network() *Network { return e.net }

// Stats returns this endpoint's traffic counters.
func (e *Endpoint) Stats() Stats { return e.net.NodeStats(e.id) }

func (e *Endpoint) box(from NodeID, tag string) *mailbox {
	e.mu.Lock()
	defer e.mu.Unlock()
	k := boxKey{from, tag}
	b, ok := e.boxes[k]
	if !ok {
		b = newMailbox()
		e.boxes[k] = b
	}
	return b
}

// Send delivers payload to node `to` under the given tag. The payload is
// copied, so callers may reuse their buffer. In-process delivery cannot
// fail; the error return satisfies Transport.
func (e *Endpoint) Send(to NodeID, tag string, payload []byte) error {
	dst := e.net.Endpoint(to)
	cp := make([]byte, len(payload))
	copy(cp, payload)
	e.net.account(e.id, to, tag, len(payload))
	dst.box(e.id, tag).put(cp)
	return nil
}

// Recv blocks until a message from `from` with the given tag arrives and
// returns its payload, or until ctx is done.
func (e *Endpoint) Recv(ctx context.Context, from NodeID, tag string) ([]byte, error) {
	return e.box(from, tag).get(ctx)
}

// Exchange sends payload to peer and receives the peer's payload under the
// same tag: the symmetric step most MPC rounds need.
func (e *Endpoint) Exchange(ctx context.Context, peer NodeID, tag string, payload []byte) ([]byte, error) {
	if err := e.Send(peer, tag, payload); err != nil {
		return nil, err
	}
	return e.Recv(ctx, peer, tag)
}

// Tag builds a hierarchical tag from parts; a helper so protocol layers
// construct collision-free namespaces.
func Tag(parts ...interface{}) string {
	s := ""
	for i, p := range parts {
		if i > 0 {
			s += "/"
		}
		s += fmt.Sprint(p)
	}
	return s
}
