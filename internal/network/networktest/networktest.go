// Package networktest provides a conformance suite for network.Transport
// implementations. Both transports — the in-process hub (internal/network)
// and the TCP peer (internal/tcpnet) — must exhibit identical messaging
// semantics, because the protocol layers above are written once against the
// interface and a cluster run must be wire-compatible with a simulated one.
package networktest

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dstress/internal/network"
)

// Pair is two connected transports that can reach each other by ID.
type Pair struct {
	A, B network.Transport
}

// RunConformance exercises the Transport contract against pairs produced by
// mk: delivery, payload integrity, per-(sender, tag) FIFO order, tag and
// sender isolation, non-blocking sends ahead of receives, concurrent
// all-to-all exchange, and traffic accounting. mk is called once per
// subtest so state does not leak between them.
func RunConformance(t *testing.T, mk func(t *testing.T) Pair) {
	t.Run("RoundTrip", func(t *testing.T) {
		p := mk(t)
		want := []byte("payload")
		if err := p.A.Send(p.B.ID(), "t", want); err != nil {
			t.Fatal(err)
		}
		got, err := p.B.Recv(context.Background(), p.A.ID(), "t")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("got %q, want %q", got, want)
		}
	})

	t.Run("FIFOPerSenderTag", func(t *testing.T) {
		p := mk(t)
		const n = 200
		for i := 0; i < n; i++ {
			if err := p.A.Send(p.B.ID(), "seq", []byte{byte(i), byte(i >> 8)}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < n; i++ {
			got, err := p.B.Recv(context.Background(), p.A.ID(), "seq")
			if err != nil {
				t.Fatal(err)
			}
			if int(got[0])|int(got[1])<<8 != i {
				t.Fatalf("message %d out of order", i)
			}
		}
	})

	t.Run("TagsIsolate", func(t *testing.T) {
		p := mk(t)
		if err := p.A.Send(p.B.ID(), "x", []byte("for x")); err != nil {
			t.Fatal(err)
		}
		if err := p.A.Send(p.B.ID(), "y", []byte("for y")); err != nil {
			t.Fatal(err)
		}
		// Receiving in the opposite order must still route by tag.
		if got, err := p.B.Recv(context.Background(), p.A.ID(), "y"); err != nil || string(got) != "for y" {
			t.Errorf("tag y got %q, %v", got, err)
		}
		if got, err := p.B.Recv(context.Background(), p.A.ID(), "x"); err != nil || string(got) != "for x" {
			t.Errorf("tag x got %q, %v", got, err)
		}
	})

	t.Run("PayloadCopied", func(t *testing.T) {
		p := mk(t)
		buf := []byte("original")
		if err := p.A.Send(p.B.ID(), "t", buf); err != nil {
			t.Fatal(err)
		}
		copy(buf, "CLOBBER!")
		if got, _ := p.B.Recv(context.Background(), p.A.ID(), "t"); string(got) != "original" {
			t.Errorf("payload aliased sender buffer: %q", got)
		}
	})

	t.Run("SendBeforeRecvDoesNotBlock", func(t *testing.T) {
		// The MPC pattern: both sides send a round's worth of messages
		// before either receives. Bounded transports would deadlock here.
		p := mk(t)
		const rounds = 50
		for i := 0; i < rounds; i++ {
			if err := p.A.Send(p.B.ID(), "r", []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
			if err := p.B.Send(p.A.ID(), "r", []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < rounds; i++ {
			if got, err := p.A.Recv(context.Background(), p.B.ID(), "r"); err != nil || got[0] != byte(i) {
				t.Fatalf("A round %d: %v %v", i, got, err)
			}
			if got, err := p.B.Recv(context.Background(), p.A.ID(), "r"); err != nil || got[0] != byte(i) {
				t.Fatalf("B round %d: %v %v", i, got, err)
			}
		}
	})

	t.Run("ConcurrentExchange", func(t *testing.T) {
		p := mk(t)
		const msgs = 100
		var wg sync.WaitGroup
		run := func(me, peer network.Transport) {
			defer wg.Done()
			tag := fmt.Sprintf("ex/%d", me.ID())
			for i := 0; i < msgs; i++ {
				if err := me.Send(peer.ID(), tag, []byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
			}
			peerTag := fmt.Sprintf("ex/%d", peer.ID())
			for i := 0; i < msgs; i++ {
				got, err := me.Recv(context.Background(), peer.ID(), peerTag)
				if err != nil || got[0] != byte(i) {
					t.Errorf("node %d msg %d: %v %v", me.ID(), i, got, err)
					return
				}
			}
		}
		wg.Add(2)
		go run(p.A, p.B)
		go run(p.B, p.A)
		wg.Wait()
	})

	t.Run("RecvCancel", func(t *testing.T) {
		// A blocked Recv must return the context's error promptly on
		// cancellation — this is what lets a run abort instead of hanging
		// on a dead counterparty.
		p := mk(t)
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := p.B.Recv(ctx, p.A.ID(), "never-sent")
			done <- err
		}()
		time.Sleep(20 * time.Millisecond) // let the Recv park
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Errorf("canceled Recv returned %v, want context.Canceled", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Recv did not return after cancellation")
		}
	})

	t.Run("RecvDeadline", func(t *testing.T) {
		p := mk(t)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		defer cancel()
		start := time.Now()
		_, err := p.B.Recv(ctx, p.A.ID(), "never-sent")
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("expired Recv returned %v, want context.DeadlineExceeded", err)
		}
		if time.Since(start) > 5*time.Second {
			t.Errorf("Recv outlived its deadline by %v", time.Since(start))
		}
	})

	t.Run("QueuedDrainsAfterCancel", func(t *testing.T) {
		// Messages that arrived before cancellation are still delivered:
		// cancellation aborts *waiting*, it does not drop data.
		p := mk(t)
		if err := p.A.Send(p.B.ID(), "q", []byte("queued")); err != nil {
			t.Fatal(err)
		}
		// Make sure the message has crossed the transport before canceling.
		if err := p.A.Send(p.B.ID(), "sync", []byte("x")); err != nil {
			t.Fatal(err)
		}
		if _, err := p.B.Recv(context.Background(), p.A.ID(), "sync"); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if got, err := p.B.Recv(ctx, p.A.ID(), "q"); err != nil || string(got) != "queued" {
			t.Errorf("queued message after cancel: %q, %v", got, err)
		}
	})

	t.Run("StatsCount", func(t *testing.T) {
		p := mk(t)
		if err := p.A.Send(p.B.ID(), "t", make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
		if _, err := p.B.Recv(context.Background(), p.A.ID(), "t"); err != nil {
			t.Fatal(err)
		}
		if s := p.A.Stats(); s.BytesSent < 64 || s.MessagesSent < 1 {
			t.Errorf("sender stats %+v", s)
		}
		if s := p.B.Stats(); s.BytesReceived < 64 {
			t.Errorf("receiver stats %+v", s)
		}
	})
}
