package network

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// mustRecv unwraps the (payload, error) pair for hub endpoints, whose Recv
// never fails.
func mustRecv(t testing.TB, e *Endpoint, from NodeID, tag string) []byte {
	t.Helper()
	got, err := e.Recv(context.Background(), from, tag)
	if err != nil {
		t.Fatalf("Recv(%d, %q): %v", from, tag, err)
	}
	return got
}

func TestSendRecv(t *testing.T) {
	n := New()
	a := n.Endpoint(1)
	b := n.Endpoint(2)
	go a.Send(2, "t", []byte("hello"))
	got := mustRecv(t, b, 1, "t")
	if string(got) != "hello" {
		t.Errorf("got %q", got)
	}
}

func TestFIFOOrder(t *testing.T) {
	n := New()
	a := n.Endpoint(1)
	b := n.Endpoint(2)
	for i := 0; i < 100; i++ {
		a.Send(2, "seq", []byte{byte(i)})
	}
	for i := 0; i < 100; i++ {
		got := mustRecv(t, b, 1, "seq")
		if got[0] != byte(i) {
			t.Fatalf("message %d out of order: %d", i, got[0])
		}
	}
}

func TestTagsIsolate(t *testing.T) {
	n := New()
	a := n.Endpoint(1)
	b := n.Endpoint(2)
	a.Send(2, "x", []byte("for x"))
	a.Send(2, "y", []byte("for y"))
	if got := mustRecv(t, b, 1, "y"); string(got) != "for y" {
		t.Errorf("tag y got %q", got)
	}
	if got := mustRecv(t, b, 1, "x"); string(got) != "for x" {
		t.Errorf("tag x got %q", got)
	}
}

func TestSendersIsolate(t *testing.T) {
	n := New()
	n.Endpoint(1).Send(3, "t", []byte("from 1"))
	n.Endpoint(2).Send(3, "t", []byte("from 2"))
	c := n.Endpoint(3)
	if got := mustRecv(t, c, 2, "t"); string(got) != "from 2" {
		t.Errorf("from 2 got %q", got)
	}
	if got := mustRecv(t, c, 1, "t"); string(got) != "from 1" {
		t.Errorf("from 1 got %q", got)
	}
}

func TestPayloadCopied(t *testing.T) {
	n := New()
	a := n.Endpoint(1)
	b := n.Endpoint(2)
	buf := []byte("original")
	a.Send(2, "t", buf)
	copy(buf, "CLOBBER!")
	if got := mustRecv(t, b, 1, "t"); string(got) != "original" {
		t.Errorf("payload aliased sender buffer: %q", got)
	}
}

func TestExchange(t *testing.T) {
	n := New()
	var wg sync.WaitGroup
	var gotA, gotB []byte
	wg.Add(2)
	go func() {
		defer wg.Done()
		gotA, _ = n.Endpoint(1).Exchange(context.Background(), 2, "x", []byte("from A"))
	}()
	go func() {
		defer wg.Done()
		gotB, _ = n.Endpoint(2).Exchange(context.Background(), 1, "x", []byte("from B"))
	}()
	wg.Wait()
	if string(gotA) != "from B" || string(gotB) != "from A" {
		t.Errorf("exchange got %q / %q", gotA, gotB)
	}
}

func TestTrafficAccounting(t *testing.T) {
	n := New()
	n.SetHeaderOverhead(10)
	a := n.Endpoint(1)
	a.Send(2, "t", make([]byte, 100))
	a.Send(2, "t", make([]byte, 50))
	n.Endpoint(2).Send(1, "t", make([]byte, 5))

	s1 := n.NodeStats(1)
	if s1.BytesSent != 170 { // 100+10 + 50+10
		t.Errorf("node1 sent %d, want 170", s1.BytesSent)
	}
	if s1.BytesReceived != 15 {
		t.Errorf("node1 received %d, want 15", s1.BytesReceived)
	}
	if s1.MessagesSent != 2 {
		t.Errorf("node1 msgs %d, want 2", s1.MessagesSent)
	}
	if n.TotalBytes() != 185 {
		t.Errorf("total %d, want 185", n.TotalBytes())
	}
	if n.MaxNodeBytes() != 185 { // node1: 170 sent + 15 received
		t.Errorf("max node bytes %d, want 185", n.MaxNodeBytes())
	}
	if avg := n.AvgNodeBytes(); avg != 185 { // both nodes total 185 each
		t.Errorf("avg node bytes %v, want 185", avg)
	}
	n.ResetStats()
	if n.TotalBytes() != 0 {
		t.Error("ResetStats did not zero counters")
	}
}

func TestConcurrentManySenders(t *testing.T) {
	n := New()
	const senders = 16
	const msgs = 200
	recv := n.Endpoint(0)
	var wg sync.WaitGroup
	for s := 1; s <= senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			e := n.Endpoint(NodeID(s))
			for i := 0; i < msgs; i++ {
				e.Send(0, "load", []byte{byte(s), byte(i)})
			}
		}(s)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for s := 1; s <= senders; s++ {
			for i := 0; i < msgs; i++ {
				got := mustRecv(t, recv, NodeID(s), "load")
				if got[0] != byte(s) || got[1] != byte(i) {
					t.Errorf("sender %d msg %d corrupted: %v", s, i, got)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
}

func TestTagHelper(t *testing.T) {
	if got := Tag("gmw", 3, "round", 7); got != "gmw/3/round/7" {
		t.Errorf("Tag = %q", got)
	}
}

func TestEndpointIdempotent(t *testing.T) {
	n := New()
	if n.Endpoint(5) != n.Endpoint(5) {
		t.Error("Endpoint not idempotent")
	}
}

func BenchmarkSendRecv(b *testing.B) {
	n := New()
	a := n.Endpoint(1)
	c := n.Endpoint(2)
	payload := make([]byte, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Send(2, "b", payload)
		c.Recv(context.Background(), 1, "b") //nolint:errcheck

	}
}

func BenchmarkParallelPairs(b *testing.B) {
	n := New()
	const pairs = 8
	b.RunParallel(func(pb *testing.PB) {
		// Each goroutine uses its own pair of endpoints keyed by a counter.
		idBase := NodeID(1000)
		var mu sync.Mutex
		mu.Lock()
		idBase += 2
		a, c := n.Endpoint(idBase), n.Endpoint(idBase+1)
		mu.Unlock()
		payload := make([]byte, 64)
		tag := fmt.Sprint(idBase)
		for pb.Next() {
			a.Send(c.ID(), tag, payload)
			c.Recv(context.Background(), a.ID(), tag) //nolint:errcheck

		}
	})
	_ = pairs
}
