package network_test

import (
	"testing"

	"dstress/internal/network"
	"dstress/internal/network/networktest"
)

// TestHubTransportConformance runs the shared Transport conformance suite
// against the in-process hub; internal/tcpnet runs the same suite against
// TCP peers.
func TestHubTransportConformance(t *testing.T) {
	networktest.RunConformance(t, func(t *testing.T) networktest.Pair {
		n := network.New()
		return networktest.Pair{A: n.Endpoint(1), B: n.Endpoint(2)}
	})
}
