package finnet

import (
	"testing"
	"testing/quick"
)

func TestCorePeripheryShape(t *testing.T) {
	top, err := CorePeriphery(CorePeripheryParams{N: 50, Core: 10, D: 20, PeriLink: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if top.N != 50 {
		t.Fatalf("N = %d", top.N)
	}
	// Core is densely connected: every core pair linked (D=20 ≥ 9+periphery
	// load may truncate a little; require high density).
	coreEdges := 0
	for u := 0; u < 10; u++ {
		for _, v := range top.Out[u] {
			if v < 10 {
				coreEdges++
			}
		}
	}
	if coreEdges < 60 {
		t.Errorf("core has only %d internal edges", coreEdges)
	}
	// Every peripheral bank reaches the core.
	for u := 10; u < 50; u++ {
		hasCore := false
		for _, v := range top.Out[u] {
			if v < 10 {
				hasCore = true
			}
		}
		if !hasCore {
			t.Errorf("peripheral bank %d not linked to core", u)
		}
	}
}

func TestDegreeBoundsRespected(t *testing.T) {
	tops := []*Topology{}
	cp, err := CorePeriphery(CorePeripheryParams{N: 60, Core: 12, D: 15, PeriLink: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	tops = append(tops, cp)
	sf, err := ScaleFree(ScaleFreeParams{N: 60, M: 3, D: 15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	tops = append(tops, sf)
	er, err := ErdosRenyi(ErdosRenyiParams{N: 60, P: 0.2, D: 15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	tops = append(tops, er)

	for ti, top := range tops {
		inDeg := make([]int, top.N)
		for u, out := range top.Out {
			if len(out) > top.D {
				t.Errorf("topology %d: node %d out-degree %d > %d", ti, u, len(out), top.D)
			}
			seen := map[int]bool{}
			for _, v := range out {
				if v == u {
					t.Errorf("topology %d: self loop at %d", ti, u)
				}
				if seen[v] {
					t.Errorf("topology %d: duplicate edge %d->%d", ti, u, v)
				}
				seen[v] = true
				inDeg[v]++
			}
		}
		for v, d := range inDeg {
			if d > top.D {
				t.Errorf("topology %d: node %d in-degree %d > %d", ti, v, d, top.D)
			}
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a, _ := ScaleFree(ScaleFreeParams{N: 40, M: 2, D: 12, Seed: 99})
	b, _ := ScaleFree(ScaleFreeParams{N: 40, M: 2, D: 12, Seed: 99})
	if a.edges() != b.edges() {
		t.Fatal("same seed produced different edge counts")
	}
	for u := range a.Out {
		for i, v := range a.Out[u] {
			if b.Out[u][i] != v {
				t.Fatal("same seed produced different topology")
			}
		}
	}
	c, _ := ScaleFree(ScaleFreeParams{N: 40, M: 2, D: 12, Seed: 100})
	if c.edges() == a.edges() && topoEqual(a, c) {
		t.Error("different seeds produced identical topology")
	}
}

func topoEqual(a, b *Topology) bool {
	for u := range a.Out {
		if len(a.Out[u]) != len(b.Out[u]) {
			return false
		}
		for i := range a.Out[u] {
			if a.Out[u][i] != b.Out[u][i] {
				return false
			}
		}
	}
	return true
}

func TestScaleFreeSkew(t *testing.T) {
	// Preferential attachment: early nodes should end with far higher
	// degree than late nodes.
	top, err := ScaleFree(ScaleFreeParams{N: 200, M: 2, D: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	deg := make([]int, top.N)
	for u, out := range top.Out {
		deg[u] += len(out)
		for _, v := range out {
			deg[v]++
		}
	}
	early, late := 0, 0
	for u := 0; u < 20; u++ {
		early += deg[u]
	}
	for u := 180; u < 200; u++ {
		late += deg[u]
	}
	if early <= late*2 {
		t.Errorf("no hub skew: early-20 degree %d vs late-20 %d", early, late)
	}
}

func TestBuildENBalanceSheets(t *testing.T) {
	top, _ := CorePeriphery(CorePeripheryParams{N: 30, Core: 6, D: 12, PeriLink: 1, Seed: 5})
	net := BuildEN(top, ENParams{CoreCash: 100, PeriCash: 10, CoreSize: 6, DebtScale: 20, Seed: 5})
	if net.N != 30 {
		t.Fatalf("N = %d", net.N)
	}
	for i := 0; i < net.N; i++ {
		if net.Cash[i] <= 0 {
			t.Errorf("bank %d has cash %v", i, net.Cash[i])
		}
	}
	// Debt entries exist exactly on topology edges.
	for u := 0; u < net.N; u++ {
		for v := 0; v < net.N; v++ {
			has := top.HasEdge(u, v)
			if has && net.Debt[u][v] <= 0 {
				t.Errorf("edge (%d,%d) has no debt", u, v)
			}
			if !has && net.Debt[u][v] != 0 {
				t.Errorf("non-edge (%d,%d) has debt %v", u, v, net.Debt[u][v])
			}
		}
	}
	// Core-core debts are larger on average than periphery debts.
	var coreSum, periSum float64
	var coreN, periN int
	for u := 0; u < net.N; u++ {
		for v := 0; v < net.N; v++ {
			if net.Debt[u][v] == 0 {
				continue
			}
			if u < 6 && v < 6 {
				coreSum += net.Debt[u][v]
				coreN++
			} else {
				periSum += net.Debt[u][v]
				periN++
			}
		}
	}
	if coreN == 0 || periN == 0 {
		t.Fatal("missing core or periphery debts")
	}
	if coreSum/float64(coreN) <= periSum/float64(periN) {
		t.Error("core debts not larger than periphery debts")
	}
}

func TestTotalDebtAndCredits(t *testing.T) {
	net := &ENNetwork{
		N:    3,
		Cash: []float64{1, 2, 3},
		Debt: [][]float64{{0, 5, 3}, {2, 0, 0}, {0, 1, 0}},
	}
	if got := net.TotalDebt(0); got != 8 {
		t.Errorf("TotalDebt(0) = %v", got)
	}
	if got := net.Credits(1); got != 6 {
		t.Errorf("Credits(1) = %v", got)
	}
}

func TestApplyCashShock(t *testing.T) {
	net := &ENNetwork{N: 2, Cash: []float64{10, 20}, Debt: [][]float64{{0, 0}, {0, 0}}}
	net.ApplyCashShock([]int{0}, 0)
	if net.Cash[0] != 0 || net.Cash[1] != 20 {
		t.Errorf("shock wrong: %v", net.Cash)
	}
}

func TestBuildEGJValuations(t *testing.T) {
	top, _ := CorePeriphery(CorePeripheryParams{N: 30, Core: 6, D: 12, PeriLink: 1, Seed: 5})
	net := BuildEGJ(top, EGJParams{
		CoreBase: 100, PeriBase: 10, CoreSize: 6,
		HoldingFrac: 0.05, ThresholdFrac: 0.9, PenaltyFrac: 0.25, Seed: 5,
	})
	for i := 0; i < net.N; i++ {
		// Pre-shock valuation includes cross-holding value: ≥ base.
		if net.OrigVal[i] < net.Base[i] {
			t.Errorf("bank %d OrigVal %v < Base %v", i, net.OrigVal[i], net.Base[i])
		}
		if net.Threshold[i] >= net.OrigVal[i] {
			t.Errorf("bank %d starts below threshold", i)
		}
		if net.Penalty[i] <= 0 {
			t.Errorf("bank %d has no penalty", i)
		}
	}
	// Holdings follow topology edges (v holds u for edge u->v).
	for u := 0; u < net.N; u++ {
		for _, v := range top.Out[u] {
			if net.Holdings[v][u] <= 0 {
				t.Errorf("edge (%d,%d) has no holding", u, v)
			}
		}
	}
}

func TestQuickCorePeripheryDegrees(t *testing.T) {
	f := func(seed int64) bool {
		top, err := CorePeriphery(CorePeripheryParams{N: 40, Core: 8, D: 12, PeriLink: 2, Seed: seed})
		if err != nil {
			return false
		}
		inDeg := make([]int, top.N)
		for _, out := range top.Out {
			if len(out) > top.D {
				return false
			}
			for _, v := range out {
				inDeg[v]++
			}
		}
		for _, d := range inDeg {
			if d > top.D {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := CorePeriphery(CorePeripheryParams{N: 10, Core: 20, D: 5, PeriLink: 1}); err == nil {
		t.Error("oversized core accepted")
	}
	if _, err := CorePeriphery(CorePeripheryParams{N: 10, Core: 2, D: 5, PeriLink: 0}); err == nil {
		t.Error("zero PeriLink accepted")
	}
	if _, err := ScaleFree(ScaleFreeParams{N: 10, M: 0, D: 5}); err == nil {
		t.Error("zero M accepted")
	}
	if _, err := ErdosRenyi(ErdosRenyiParams{N: 10, P: 1.5, D: 5}); err == nil {
		t.Error("probability > 1 accepted")
	}
}
