// Package finnet generates and represents synthetic financial networks.
//
// No public interbank data set exists — the privacy problem DStress solves
// is precisely why (Appendix C) — so, like the paper, we evaluate on
// synthetic networks whose shape follows the empirical literature:
//
//   - Core-periphery (Cocco et al. [18], the structure Appendix C uses): a
//     small, densely connected core of large institutions surrounded by
//     peripheral banks that each link to one or two core banks.
//   - Scale-free (preferential attachment): banks closer to the "center"
//     have exponentially more linkages.
//   - Erdős–Rényi: the uniform baseline.
//
// Generators are deterministic in their seed (math/rand suffices: this is
// workload synthesis, not cryptography) and respect a degree bound D so the
// result can run under DStress's fixed-degree execution (§3.2 assumption 4).
//
// Two concrete network views exist, one per contagion model:
//
//   - ENNetwork: debt contracts (Eisenberg–Noe): cash reserves plus a debt
//     matrix.
//   - EGJNetwork: equity cross-holdings (Elliott–Golub–Jackson): base
//     assets, cross-holding fractions, failure thresholds and penalties.
package finnet

import (
	"fmt"
	"math/rand" //dstress:rand-ok — seeded workload synthesis, not cryptography
)

// Topology is a directed graph with bounded degree, shared by both model
// views.
type Topology struct {
	N   int
	D   int     // degree bound respected by construction
	Out [][]int // adjacency lists
}

// edges returns the number of directed edges.
func (t *Topology) edges() int {
	n := 0
	for _, out := range t.Out {
		n += len(out)
	}
	return n
}

// HasEdge reports whether u → v exists.
func (t *Topology) HasEdge(u, v int) bool {
	for _, w := range t.Out[u] {
		if w == v {
			return true
		}
	}
	return false
}

// addEdge inserts u → v if absent and within degree bounds; reports
// success.
func (t *Topology) addEdge(u, v int, inDeg []int) bool {
	if u == v || t.HasEdge(u, v) {
		return false
	}
	if len(t.Out[u]) >= t.D || inDeg[v] >= t.D {
		return false
	}
	t.Out[u] = append(t.Out[u], v)
	inDeg[v]++
	return true
}

// CorePeripheryParams configures the Appendix C style generator.
type CorePeripheryParams struct {
	N        int // total banks
	Core     int // core size (10 of 50 in Appendix C)
	D        int // degree bound
	PeriLink int // links from each peripheral bank into the core (1–2)
	Seed     int64
}

// CorePeriphery generates a two-tier topology: the core is (near-)fully
// connected in both directions, subject to D; each peripheral bank connects
// to PeriLink random core banks bidirectionally.
func CorePeriphery(p CorePeripheryParams) (*Topology, error) {
	if p.Core < 1 || p.Core > p.N {
		return nil, fmt.Errorf("finnet: core size %d out of range", p.Core)
	}
	if p.PeriLink < 1 {
		return nil, fmt.Errorf("finnet: PeriLink must be ≥ 1")
	}
	rng := rand.New(rand.NewSource(p.Seed))
	t := &Topology{N: p.N, D: p.D, Out: make([][]int, p.N)}
	inDeg := make([]int, p.N)
	// Dense core.
	for u := 0; u < p.Core; u++ {
		for v := 0; v < p.Core; v++ {
			if u != v {
				t.addEdge(u, v, inDeg)
			}
		}
	}
	// Periphery: 1–2 bidirectional links into the core.
	for u := p.Core; u < p.N; u++ {
		links := p.PeriLink
		for tries := 0; links > 0 && tries < 50; tries++ {
			c := rng.Intn(p.Core)
			if t.addEdge(u, c, inDeg) {
				t.addEdge(c, u, inDeg)
				links--
			}
		}
	}
	return t, nil
}

// ScaleFreeParams configures preferential attachment.
type ScaleFreeParams struct {
	N    int
	M    int // links added per new node
	D    int // degree bound
	Seed int64
}

// ScaleFree generates a Barabási–Albert style topology with bidirectional
// edges, truncated at the degree bound (which regulators would impose on a
// DStress deployment anyway, §3.7).
func ScaleFree(p ScaleFreeParams) (*Topology, error) {
	if p.M < 1 || p.M >= p.N {
		return nil, fmt.Errorf("finnet: M %d out of range", p.M)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	t := &Topology{N: p.N, D: p.D, Out: make([][]int, p.N)}
	inDeg := make([]int, p.N)
	// Seed clique of M+1 nodes.
	for u := 0; u <= p.M; u++ {
		for v := 0; v <= p.M; v++ {
			if u != v {
				t.addEdge(u, v, inDeg)
			}
		}
	}
	totalDeg := make([]int, p.N)
	for u := 0; u <= p.M; u++ {
		totalDeg[u] = len(t.Out[u]) + inDeg[u]
	}
	sum := 0
	for _, d := range totalDeg {
		sum += d
	}
	for u := p.M + 1; u < p.N; u++ {
		added := 0
		for tries := 0; added < p.M && tries < 200; tries++ {
			// Preferential attachment: pick target ∝ degree.
			r := rng.Intn(sum + 1)
			v, acc := 0, 0
			for ; v < u; v++ {
				acc += totalDeg[v] + 1
				if acc > r {
					break
				}
			}
			if v >= u {
				v = rng.Intn(u)
			}
			if t.addEdge(u, v, inDeg) {
				t.addEdge(v, u, inDeg)
				delta := len(t.Out[u]) + inDeg[u] - totalDeg[u]
				totalDeg[u] += delta
				sum += delta
				delta = len(t.Out[v]) + inDeg[v] - totalDeg[v]
				totalDeg[v] += delta
				sum += delta
				added++
			}
		}
	}
	return t, nil
}

// ErdosRenyiParams configures the uniform random baseline.
type ErdosRenyiParams struct {
	N    int
	P    float64 // edge probability
	D    int
	Seed int64
}

// ErdosRenyi generates a uniform random directed topology under the degree
// bound.
func ErdosRenyi(p ErdosRenyiParams) (*Topology, error) {
	if p.P < 0 || p.P > 1 {
		return nil, fmt.Errorf("finnet: probability %v out of range", p.P)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	t := &Topology{N: p.N, D: p.D, Out: make([][]int, p.N)}
	inDeg := make([]int, p.N)
	for u := 0; u < p.N; u++ {
		for v := 0; v < p.N; v++ {
			if u != v && rng.Float64() < p.P {
				t.addEdge(u, v, inDeg)
			}
		}
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// Eisenberg–Noe view
// ---------------------------------------------------------------------------

// ENNetwork is a debt-contract network (§4.2): Debt[i][j] is the payment i
// owes j under the stress scenario; Cash[i] is i's liquid reserve.
type ENNetwork struct {
	N    int
	Cash []float64
	Debt [][]float64
}

// TotalDebt returns Σ_j Debt[i][j].
func (n *ENNetwork) TotalDebt(i int) float64 {
	var t float64
	for _, d := range n.Debt[i] {
		t += d
	}
	return t
}

// Credits returns Σ_j Debt[j][i], the payments owed to i.
func (n *ENNetwork) Credits(i int) float64 {
	var t float64
	for j := 0; j < n.N; j++ {
		t += n.Debt[j][i]
	}
	return t
}

// ENParams sizes the balance sheets layered over a topology.
type ENParams struct {
	// CoreCash / PeriCash are liquid reserves for core (index < CoreSize)
	// and peripheral banks.
	CoreCash, PeriCash float64
	// CoreSize marks how many leading indices count as core banks.
	CoreSize int
	// DebtScale is the mean per-edge debt; actual debts are uniform in
	// [0.5, 1.5]× scale, with core-core edges 4× larger.
	DebtScale float64
	Seed      int64
}

// BuildEN lays Eisenberg–Noe balance sheets over a topology.
func BuildEN(t *Topology, p ENParams) *ENNetwork {
	rng := rand.New(rand.NewSource(p.Seed))
	n := &ENNetwork{N: t.N, Cash: make([]float64, t.N), Debt: make([][]float64, t.N)}
	for i := range n.Debt {
		n.Debt[i] = make([]float64, t.N)
		if i < p.CoreSize {
			n.Cash[i] = p.CoreCash * (0.8 + 0.4*rng.Float64())
		} else {
			n.Cash[i] = p.PeriCash * (0.8 + 0.4*rng.Float64())
		}
	}
	for u := 0; u < t.N; u++ {
		for _, v := range t.Out[u] {
			scale := p.DebtScale
			if u < p.CoreSize && v < p.CoreSize {
				scale *= 4
			}
			n.Debt[u][v] = scale * (0.5 + rng.Float64())
		}
	}
	return n
}

// ApplyCashShock multiplies the cash of the given banks by factor (e.g.
// 0 wipes reserves out), modeling the hypothetical event a stress test
// simulates (§2.1).
func (n *ENNetwork) ApplyCashShock(banks []int, factor float64) {
	for _, b := range banks {
		n.Cash[b] *= factor
	}
}

// ---------------------------------------------------------------------------
// Elliott–Golub–Jackson view
// ---------------------------------------------------------------------------

// EGJNetwork is an equity cross-holding network (§4.3). Holdings[i][j] is
// the fraction of bank j's value held by bank i.
type EGJNetwork struct {
	N         int
	Base      []float64 // value of own primitive assets
	OrigVal   []float64 // pre-shock valuation
	Holdings  [][]float64
	Threshold []float64
	Penalty   []float64
}

// EGJParams sizes the cross-holding network.
type EGJParams struct {
	CoreBase, PeriBase float64
	CoreSize           int
	// HoldingFrac is the mean cross-holding fraction per edge.
	HoldingFrac float64
	// ThresholdFrac sets the failure threshold as a fraction of OrigVal.
	ThresholdFrac float64
	// PenaltyFrac sets the failure penalty as a fraction of OrigVal.
	PenaltyFrac float64
	Seed        int64
}

// BuildEGJ lays Elliott–Golub–Jackson balance sheets over a topology. Edge
// u → v in the topology means v holds a share of u (discount messages flow
// along edges).
func BuildEGJ(t *Topology, p EGJParams) *EGJNetwork {
	rng := rand.New(rand.NewSource(p.Seed))
	n := &EGJNetwork{
		N:         t.N,
		Base:      make([]float64, t.N),
		OrigVal:   make([]float64, t.N),
		Holdings:  make([][]float64, t.N),
		Threshold: make([]float64, t.N),
		Penalty:   make([]float64, t.N),
	}
	for i := range n.Holdings {
		n.Holdings[i] = make([]float64, t.N)
		if i < p.CoreSize {
			n.Base[i] = p.CoreBase * (0.8 + 0.4*rng.Float64())
		} else {
			n.Base[i] = p.PeriBase * (0.8 + 0.4*rng.Float64())
		}
	}
	for u := 0; u < t.N; u++ {
		for _, v := range t.Out[u] {
			n.Holdings[v][u] = p.HoldingFrac * (0.5 + rng.Float64())
		}
	}
	// Pre-shock valuation: fixpoint of value = base + Σ holdings·value,
	// iterated to convergence.
	vals := append([]float64{}, n.Base...)
	for it := 0; it < 100; it++ {
		next := make([]float64, t.N)
		for i := 0; i < t.N; i++ {
			next[i] = n.Base[i]
			for j := 0; j < t.N; j++ {
				next[i] += n.Holdings[i][j] * vals[j]
			}
		}
		vals = next
	}
	copy(n.OrigVal, vals)
	for i := 0; i < t.N; i++ {
		n.Threshold[i] = p.ThresholdFrac * n.OrigVal[i]
		n.Penalty[i] = p.PenaltyFrac * n.OrigVal[i]
	}
	return n
}

// ApplyBaseShock multiplies the base assets of the given banks by factor.
func (n *EGJNetwork) ApplyBaseShock(banks []int, factor float64) {
	for _, b := range banks {
		n.Base[b] *= factor
	}
}
