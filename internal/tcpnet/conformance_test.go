package tcpnet

import (
	"testing"

	"dstress/internal/network/networktest"
)

// TestTCPTransportConformance runs the shared Transport conformance suite
// against real loopback TCP peers, proving tcpnet.Peer and the in-process
// hub expose identical messaging semantics.
func TestTCPTransportConformance(t *testing.T) {
	networktest.RunConformance(t, func(t *testing.T) networktest.Pair {
		a, b := newPair(t)
		return networktest.Pair{A: a, B: b}
	})
}
