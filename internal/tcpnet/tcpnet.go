// Package tcpnet is the deployment transport: the same
// (sender, receiver, tag)-addressed messaging semantics as the in-process
// hub in internal/network, carried over real TCP connections.
//
// The paper's nodes are banks' machines communicating over the Internet
// (§3.3); the evaluation ran on EC2 instances in one region. This package
// provides that wire layer for out-of-process deployments: each node runs
// a Peer that listens on a TCP address, dials its counterparties lazily,
// and frames messages as
//
//	uint32 length | int32 from | uint16 tagLen | tag | payload
//
// Delivery preserves per-(sender, tag) FIFO order (messages from one
// sender travel on one connection in order and are queued in order).
// Traffic counters mirror internal/network so measurements stay
// comparable. Confidentiality/integrity of the channel itself is expected
// from the usual TLS layer in a real deployment; the DStress protocols
// additionally never place bare secrets on the wire (shares are encrypted
// or information-theoretically masked).
package tcpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"dstress/internal/network"
)

// maxFrame bounds a single message; GMW rounds batch at most a few MB.
const maxFrame = 64 << 20

// Peer is one node's TCP attachment.
type Peer struct {
	id       network.NodeID
	listener net.Listener

	mu    sync.Mutex
	dials map[network.NodeID]net.Conn // outbound connections by peer id
	addrs map[network.NodeID]string   // directory: node id → address
	boxes map[boxKey]*mailbox

	bytesSent, bytesRecv, msgsSent atomic.Int64

	closed  atomic.Bool
	writeMu sync.Map // per-conn *sync.Mutex
}

type boxKey struct {
	from network.NodeID
	tag  string
}

type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue [][]byte
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Listen starts a peer on addr ("127.0.0.1:0" for an ephemeral port).
func Listen(id network.NodeID, addr string) (*Peer, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: listen %s: %w", addr, err)
	}
	p := &Peer{
		id:       id,
		listener: l,
		dials:    make(map[network.NodeID]net.Conn),
		addrs:    make(map[network.NodeID]string),
		boxes:    make(map[boxKey]*mailbox),
	}
	go p.acceptLoop()
	return p, nil
}

// ID returns this peer's node id.
func (p *Peer) ID() network.NodeID { return p.id }

// Addr returns the listening address (for directory registration).
func (p *Peer) Addr() string { return p.listener.Addr().String() }

// Register adds a node-id → address mapping; in a deployment the trusted
// party's signed node list (§3.4) plays this role.
func (p *Peer) Register(id network.NodeID, addr string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.addrs[id] = addr
}

// Close shuts the peer down; in-flight Recv calls are released with
// zero-length results only if the sender closed first, otherwise they
// block forever (protocol-level completion is the caller's business).
func (p *Peer) Close() error {
	p.closed.Store(true)
	err := p.listener.Close()
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.dials {
		c.Close()
	}
	return err
}

// Stats returns the traffic snapshot, aligned with network.Stats.
func (p *Peer) Stats() network.Stats {
	return network.Stats{
		BytesSent:     p.bytesSent.Load(),
		BytesReceived: p.bytesRecv.Load(),
		MessagesSent:  p.msgsSent.Load(),
	}
}

func (p *Peer) acceptLoop() {
	for {
		conn, err := p.listener.Accept()
		if err != nil {
			return // listener closed
		}
		go p.readLoop(conn)
	}
}

func (p *Peer) readLoop(conn net.Conn) {
	defer conn.Close()
	for {
		from, tag, payload, err := readFrame(conn)
		if err != nil {
			return
		}
		p.bytesRecv.Add(int64(len(payload)))
		p.box(from, tag).put(payload)
	}
}

func (p *Peer) box(from network.NodeID, tag string) *mailbox {
	p.mu.Lock()
	defer p.mu.Unlock()
	k := boxKey{from, tag}
	b, ok := p.boxes[k]
	if !ok {
		b = newMailbox()
		p.boxes[k] = b
	}
	return b
}

func (m *mailbox) put(payload []byte) {
	m.mu.Lock()
	m.queue = append(m.queue, payload)
	m.mu.Unlock()
	m.cond.Signal()
}

func (m *mailbox) get() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 {
		m.cond.Wait()
	}
	v := m.queue[0]
	m.queue = m.queue[1:]
	return v
}

// conn returns (dialing lazily) the outbound connection to peer `to`.
func (p *Peer) conn(to network.NodeID) (net.Conn, error) {
	p.mu.Lock()
	if c, ok := p.dials[to]; ok {
		p.mu.Unlock()
		return c, nil
	}
	addr, ok := p.addrs[to]
	p.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("tcpnet: no address registered for node %d", to)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: dial node %d at %s: %w", to, addr, err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if existing, ok := p.dials[to]; ok {
		c.Close()
		return existing, nil
	}
	p.dials[to] = c
	return c, nil
}

// Send delivers payload to node `to` under tag.
func (p *Peer) Send(to network.NodeID, tag string, payload []byte) error {
	c, err := p.conn(to)
	if err != nil {
		return err
	}
	muI, _ := p.writeMu.LoadOrStore(to, &sync.Mutex{})
	mu := muI.(*sync.Mutex)
	mu.Lock()
	defer mu.Unlock()
	if err := writeFrame(c, p.id, tag, payload); err != nil {
		return fmt.Errorf("tcpnet: send to %d: %w", to, err)
	}
	p.bytesSent.Add(int64(len(payload)))
	p.msgsSent.Add(1)
	return nil
}

// Recv blocks until a message from `from` with the given tag arrives.
func (p *Peer) Recv(from network.NodeID, tag string) []byte {
	return p.box(from, tag).get()
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

func writeFrame(w io.Writer, from network.NodeID, tag string, payload []byte) error {
	if len(tag) > 0xffff {
		return errors.New("tcpnet: tag too long")
	}
	total := 4 + 2 + len(tag) + len(payload)
	if total > maxFrame {
		return fmt.Errorf("tcpnet: frame of %d bytes exceeds limit", total)
	}
	buf := make([]byte, 4+total)
	binary.BigEndian.PutUint32(buf[0:], uint32(total))
	binary.BigEndian.PutUint32(buf[4:], uint32(from))
	binary.BigEndian.PutUint16(buf[8:], uint16(len(tag)))
	copy(buf[10:], tag)
	copy(buf[10+len(tag):], payload)
	_, err := w.Write(buf)
	return err
}

func readFrame(r io.Reader) (from network.NodeID, tag string, payload []byte, err error) {
	var hdr [4]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, "", nil, err
	}
	total := binary.BigEndian.Uint32(hdr[:])
	if total > maxFrame || total < 6 {
		return 0, "", nil, fmt.Errorf("tcpnet: bad frame length %d", total)
	}
	body := make([]byte, total)
	if _, err = io.ReadFull(r, body); err != nil {
		return 0, "", nil, err
	}
	from = network.NodeID(binary.BigEndian.Uint32(body[0:]))
	tagLen := int(binary.BigEndian.Uint16(body[4:]))
	if 6+tagLen > int(total) {
		return 0, "", nil, errors.New("tcpnet: tag overruns frame")
	}
	tag = string(body[6 : 6+tagLen])
	payload = body[6+tagLen:]
	return from, tag, payload, nil
}
