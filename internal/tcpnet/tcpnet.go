// Package tcpnet is the deployment transport: the same
// (sender, receiver, tag)-addressed messaging semantics as the in-process
// hub in internal/network, carried over real TCP connections.
//
// The paper's nodes are banks' machines communicating over the Internet
// (§3.3); the evaluation ran on EC2 instances in one region. This package
// provides that wire layer for out-of-process deployments: each node runs
// a Peer that listens on a TCP address, dials its counterparties lazily,
// and frames messages as
//
//	uint32 length | int32 from | uint16 tagLen | tag | payload
//
// Delivery preserves per-(sender, tag) FIFO order (messages from one
// sender travel on one connection in order and are queued in order).
// Traffic counters record the actual framed wire bytes (header + tag +
// payload) on both sides, where the in-process hub adds a modeled
// per-message overhead; both therefore approximate the same packet-capture
// quantity. Confidentiality/integrity of the channel itself is expected
// from the usual TLS layer in a real deployment; the DStress protocols
// additionally never place bare secrets on the wire (shares are encrypted
// or information-theoretically masked).
package tcpnet

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"

	"dstress/internal/network"
)

// maxFrame bounds a single message; GMW rounds batch at most a few MB.
const maxFrame = 64 << 20

// identTag marks the greeting frame a dialer sends first on every outbound
// connection, so the accepting side knows which node feeds the connection
// before any data arrives — and can release that sender's mailboxes if the
// connection dies even mid-handshake. The NUL prefix keeps it out of the
// protocol tag namespace.
const identTag = "\x00tcpnet/ident"

// Peer is one node's TCP attachment.
type Peer struct {
	id       network.NodeID
	listener net.Listener

	mu    sync.Mutex
	dials map[network.NodeID]net.Conn // outbound connections by peer id
	addrs map[network.NodeID]string   // directory: node id → address
	boxes map[boxKey]*mailbox
	dead  map[network.NodeID]bool // senders whose inbound connection died

	bytesSent, bytesRecv, msgsSent atomic.Int64

	// tagStats aggregates framed wire bytes by tag prefix (protocol layer)
	// and peerStats by counterparty; both are sync.Maps of atomics so the
	// data-plane hot path never takes p.mu.
	tagStats  sync.Map // string → *tagCounter
	peerStats sync.Map // network.NodeID → *tagCounter

	closed  atomic.Bool
	writeMu sync.Map // per-conn *sync.Mutex
}

var (
	_ network.Transport  = (*Peer)(nil)
	_ network.TagTracker = (*Peer)(nil)
)

// tagCounter accumulates one prefix's (or one counterparty's) traffic.
type tagCounter struct {
	bytesSent, bytesRecv, msgsSent atomic.Int64
}

func counterIn(m *sync.Map, key any) *tagCounter {
	c, ok := m.Load(key)
	if !ok {
		c, _ = m.LoadOrStore(key, new(tagCounter))
	}
	return c.(*tagCounter)
}

type boxKey struct {
	from network.NodeID
	tag  string
}

type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  [][]byte
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Listen starts a peer on addr ("127.0.0.1:0" for an ephemeral port).
func Listen(id network.NodeID, addr string) (*Peer, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: listen %s: %w", addr, err)
	}
	p := &Peer{
		id:       id,
		listener: l,
		dials:    make(map[network.NodeID]net.Conn),
		addrs:    make(map[network.NodeID]string),
		boxes:    make(map[boxKey]*mailbox),
		dead:     make(map[network.NodeID]bool),
	}
	go p.acceptLoop()
	return p, nil
}

// ID returns this peer's node id.
func (p *Peer) ID() network.NodeID { return p.id }

// Addr returns the listening address (for directory registration).
func (p *Peer) Addr() string { return p.listener.Addr().String() }

// Register adds a node-id → address mapping; in a deployment the trusted
// party's signed node list (§3.4) plays this role.
func (p *Peer) Register(id network.NodeID, addr string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.addrs[id] = addr
}

// Close shuts the peer down: the listener and all outbound connections are
// closed, every blocked or future Recv is released with an error (queued
// messages still drain), and subsequent Sends fail.
func (p *Peer) Close() error {
	p.closed.Store(true)
	err := p.listener.Close()
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.dials {
		c.Close()
	}
	for _, b := range p.boxes {
		b.close()
	}
	return err
}

// Stats returns the traffic snapshot, aligned with network.Stats.
func (p *Peer) Stats() network.Stats {
	return network.Stats{
		BytesSent:     p.bytesSent.Load(),
		BytesReceived: p.bytesRecv.Load(),
		MessagesSent:  p.msgsSent.Load(),
	}
}

// TagStats returns framed wire bytes and messages aggregated by tag prefix
// (the protocol layer: "blk", "tx", "init", …). The ident greeting is
// excluded — it carries no protocol tag.
func (p *Peer) TagStats() map[string]network.TagStat {
	out := make(map[string]network.TagStat)
	p.tagStats.Range(func(k, v any) bool {
		c := v.(*tagCounter)
		out[k.(string)] = network.TagStat{
			BytesSent:     c.bytesSent.Load(),
			BytesReceived: c.bytesRecv.Load(),
			MessagesSent:  c.msgsSent.Load(),
		}
		return true
	})
	return out
}

// RetireTagPrefix drops the per-tag-prefix counters and drained mailboxes
// filed under prefix (at a "/" component boundary — "q/3" retires "q/3/..."
// but not "q/30/..."). A standing daemon calls this after reporting a
// query's doneMsg so the tagStats map and mailbox table don't grow by one
// entry set per query served. Node-level counters stay cumulative.
// Implements network.TagRetirer.
func (p *Peer) RetireTagPrefix(prefix string) {
	under := func(tag string) bool {
		return tag == prefix || (strings.HasPrefix(tag, prefix) && len(tag) > len(prefix) && tag[len(prefix)] == '/')
	}
	p.tagStats.Range(func(k, v any) bool {
		if under(k.(string)) {
			p.tagStats.Delete(k)
		}
		return true
	})
	p.mu.Lock()
	defer p.mu.Unlock()
	for k, b := range p.boxes {
		if under(k.tag) {
			// Close before dropping: a straggler still parked in Recv gets a
			// "peer closed" error instead of hanging on an orphaned mailbox.
			b.close()
			delete(p.boxes, k)
		}
	}
}

// PeerStats returns framed wire bytes and messages aggregated by
// counterparty node.
func (p *Peer) PeerStats() map[network.NodeID]network.Stats {
	out := make(map[network.NodeID]network.Stats)
	p.peerStats.Range(func(k, v any) bool {
		c := v.(*tagCounter)
		out[k.(network.NodeID)] = network.Stats{
			BytesSent:     c.bytesSent.Load(),
			BytesReceived: c.bytesRecv.Load(),
			MessagesSent:  c.msgsSent.Load(),
		}
		return true
	})
	return out
}

func (p *Peer) acceptLoop() {
	for {
		conn, err := p.listener.Accept()
		if err != nil {
			return // listener closed
		}
		go p.readLoop(conn)
	}
}

// readLoop drains one inbound connection. A sender's messages all travel on
// its single outbound connection, so when that connection dies the sender
// is gone for good (there is no reconnection — fail-stop, like the paper's
// prototype): every mailbox fed by it is released so blocked Recvs fail
// instead of hanging the surviving daemons forever. Already-queued messages
// still drain first.
func (p *Peer) readLoop(conn net.Conn) {
	defer conn.Close()
	var lastFrom network.NodeID
	seen := false
	for {
		from, tag, payload, err := readFrame(conn)
		if err != nil {
			if seen && !p.closed.Load() {
				p.markDead(lastFrom)
			}
			return
		}
		lastFrom, seen = from, true
		n := frameBytes(tag, payload)
		p.bytesRecv.Add(n)
		if tag == identTag {
			continue
		}
		counterIn(&p.tagStats, network.TagPrefix(tag)).bytesRecv.Add(n)
		counterIn(&p.peerStats, from).bytesRecv.Add(n)
		p.box(from, tag).put(payload)
	}
}

// markDead releases every mailbox fed by the given sender, present and
// future.
func (p *Peer) markDead(from network.NodeID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dead[from] = true
	for k, b := range p.boxes {
		if k.from == from {
			b.close()
		}
	}
}

func (p *Peer) box(from network.NodeID, tag string) *mailbox {
	p.mu.Lock()
	defer p.mu.Unlock()
	k := boxKey{from, tag}
	b, ok := p.boxes[k]
	if !ok {
		b = newMailbox()
		if p.closed.Load() || p.dead[from] {
			b.closed = true
		}
		p.boxes[k] = b
	}
	return b
}

func (m *mailbox) put(payload []byte) {
	m.mu.Lock()
	m.queue = append(m.queue, payload)
	m.mu.Unlock()
	m.cond.Signal()
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cond.Broadcast()
}

// get returns the next queued message; queued messages drain even after
// close, so an orderly shutdown does not drop deliveries. A done context
// releases the wait with the context's error.
func (m *mailbox) get(ctx context.Context) ([]byte, error) {
	m.mu.Lock()
	if len(m.queue) > 0 {
		v := m.queue[0]
		m.queue = m.queue[1:]
		m.mu.Unlock()
		return v, nil
	}
	m.mu.Unlock()
	if ctx.Done() != nil {
		// Broadcast under the lock so the waiter is either parked in Wait
		// or has not yet re-checked ctx.Err — no wakeup can be lost.
		stop := context.AfterFunc(ctx, func() {
			m.mu.Lock()
			m.cond.Broadcast()
			m.mu.Unlock()
		})
		defer stop()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m.cond.Wait()
	}
	if len(m.queue) == 0 {
		return nil, errors.New("tcpnet: peer closed")
	}
	v := m.queue[0]
	m.queue = m.queue[1:]
	return v, nil
}

// conn returns (dialing lazily) the outbound connection to peer `to`.
func (p *Peer) conn(to network.NodeID) (net.Conn, error) {
	if p.closed.Load() {
		return nil, fmt.Errorf("tcpnet: peer %d is closed", p.id)
	}
	p.mu.Lock()
	if c, ok := p.dials[to]; ok {
		p.mu.Unlock()
		return c, nil
	}
	addr, ok := p.addrs[to]
	p.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("tcpnet: no address registered for node %d", to)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: dial node %d at %s: %w", to, addr, err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	// Re-check under the lock: a concurrent Close may have already swept
	// p.dials, and a connection stored now would outlive the peer.
	if p.closed.Load() {
		c.Close()
		return nil, fmt.Errorf("tcpnet: peer %d is closed", p.id)
	}
	if existing, ok := p.dials[to]; ok {
		c.Close()
		return existing, nil
	}
	// Greet before the connection becomes visible to Send: the accepting
	// side learns who feeds this connection even if we die before sending
	// any data, so its blocked Recvs can be released.
	if err := writeFrame(c, p.id, identTag, nil); err != nil {
		c.Close()
		return nil, fmt.Errorf("tcpnet: greeting node %d: %w", to, err)
	}
	p.bytesSent.Add(frameBytes(identTag, nil))
	p.dials[to] = c
	return c, nil
}

// Send delivers payload to node `to` under tag.
func (p *Peer) Send(to network.NodeID, tag string, payload []byte) error {
	c, err := p.conn(to)
	if err != nil {
		return err
	}
	muI, _ := p.writeMu.LoadOrStore(to, &sync.Mutex{})
	mu := muI.(*sync.Mutex)
	mu.Lock()
	defer mu.Unlock()
	if err := writeFrame(c, p.id, tag, payload); err != nil {
		return fmt.Errorf("tcpnet: send to %d: %w", to, err)
	}
	n := frameBytes(tag, payload)
	p.bytesSent.Add(n)
	p.msgsSent.Add(1)
	tc := counterIn(&p.tagStats, network.TagPrefix(tag))
	tc.bytesSent.Add(n)
	tc.msgsSent.Add(1)
	pc := counterIn(&p.peerStats, to)
	pc.bytesSent.Add(n)
	pc.msgsSent.Add(1)
	return nil
}

// frameBytes is the exact on-the-wire size of one message:
// uint32 length | int32 from | uint16 tagLen | tag | payload.
func frameBytes(tag string, payload []byte) int64 {
	return int64(4 + 4 + 2 + len(tag) + len(payload))
}

// Recv blocks until a message from `from` with the given tag arrives, the
// context is done, or the peer is closed. Queued messages drain before
// either failure is reported.
func (p *Peer) Recv(ctx context.Context, from network.NodeID, tag string) ([]byte, error) {
	return p.box(from, tag).get(ctx)
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

func writeFrame(w io.Writer, from network.NodeID, tag string, payload []byte) error {
	if len(tag) > 0xffff {
		return errors.New("tcpnet: tag too long")
	}
	total := 4 + 2 + len(tag) + len(payload)
	if total > maxFrame {
		return fmt.Errorf("tcpnet: frame of %d bytes exceeds limit", total)
	}
	buf := make([]byte, 4+total)
	binary.BigEndian.PutUint32(buf[0:], uint32(total))
	binary.BigEndian.PutUint32(buf[4:], uint32(from))
	binary.BigEndian.PutUint16(buf[8:], uint16(len(tag)))
	copy(buf[10:], tag)
	copy(buf[10+len(tag):], payload)
	_, err := w.Write(buf)
	return err
}

func readFrame(r io.Reader) (from network.NodeID, tag string, payload []byte, err error) {
	var hdr [4]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, "", nil, err
	}
	total := binary.BigEndian.Uint32(hdr[:])
	if total > maxFrame || total < 6 {
		return 0, "", nil, fmt.Errorf("tcpnet: bad frame length %d", total)
	}
	body := make([]byte, total)
	if _, err = io.ReadFull(r, body); err != nil {
		return 0, "", nil, err
	}
	from = network.NodeID(binary.BigEndian.Uint32(body[0:]))
	tagLen := int(binary.BigEndian.Uint16(body[4:]))
	if 6+tagLen > int(total) {
		return 0, "", nil, errors.New("tcpnet: tag overruns frame")
	}
	tag = string(body[6 : 6+tagLen])
	payload = body[6+tagLen:]
	return from, tag, payload, nil
}
