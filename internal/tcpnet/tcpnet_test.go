package tcpnet

import (
	"bytes"
	"context"
	"crypto/rand"
	"sync"
	"testing"
	"time"

	"dstress/internal/network"
	"dstress/internal/secretshare"
)

// newPair creates two connected peers on loopback.
func newPair(t *testing.T) (*Peer, *Peer) {
	t.Helper()
	a, err := Listen(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Listen(2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	a.Register(2, b.Addr())
	b.Register(1, a.Addr())
	return a, b
}

// mustRecv unwraps Recv's (payload, error) pair in tests that expect
// delivery to succeed.
func mustRecv(t testing.TB, p *Peer, from network.NodeID, tag string) []byte {
	t.Helper()
	got, err := p.Recv(context.Background(), from, tag)
	if err != nil {
		t.Fatalf("Recv(%d, %q): %v", from, tag, err)
	}
	return got
}

func TestSendRecvOverTCP(t *testing.T) {
	a, b := newPair(t)
	if err := a.Send(2, "greet", []byte("hello over tcp")); err != nil {
		t.Fatal(err)
	}
	if got := mustRecv(t, b, 1, "greet"); string(got) != "hello over tcp" {
		t.Errorf("got %q", got)
	}
}

func TestBidirectional(t *testing.T) {
	a, b := newPair(t)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		a.Send(2, "x", []byte("from a"))
		if got := mustRecv(t, a, 2, "x"); string(got) != "from b" {
			t.Errorf("a got %q", got)
		}
	}()
	go func() {
		defer wg.Done()
		b.Send(1, "x", []byte("from b"))
		if got := mustRecv(t, b, 1, "x"); string(got) != "from a" {
			t.Errorf("b got %q", got)
		}
	}()
	wg.Wait()
}

func TestFIFOPerSenderTag(t *testing.T) {
	a, b := newPair(t)
	const n = 500
	go func() {
		for i := 0; i < n; i++ {
			a.Send(2, "seq", []byte{byte(i), byte(i >> 8)})
		}
	}()
	for i := 0; i < n; i++ {
		got := mustRecv(t, b, 1, "seq")
		if int(got[0])|int(got[1])<<8 != i {
			t.Fatalf("message %d out of order", i)
		}
	}
}

func TestTagsIsolateOverTCP(t *testing.T) {
	a, b := newPair(t)
	a.Send(2, "one", []byte("1"))
	a.Send(2, "two", []byte("2"))
	if got := mustRecv(t, b, 1, "two"); string(got) != "2" {
		t.Errorf("tag two got %q", got)
	}
	if got := mustRecv(t, b, 1, "one"); string(got) != "1" {
		t.Errorf("tag one got %q", got)
	}
}

func TestLargePayload(t *testing.T) {
	a, b := newPair(t)
	payload := make([]byte, 1<<20)
	if _, err := rand.Read(payload); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, "big", payload); err != nil {
		t.Fatal(err)
	}
	if got := mustRecv(t, b, 1, "big"); !bytes.Equal(got, payload) {
		t.Error("large payload corrupted")
	}
}

func TestTrafficCounters(t *testing.T) {
	a, b := newPair(t)
	a.Send(2, "t", make([]byte, 100))
	got := mustRecv(t, b, 1, "t")
	if len(got) != 100 {
		t.Fatal("payload lost")
	}
	// Counters record full frames (10-byte header + tag + payload),
	// including the one-time greeting frame on the new connection.
	want := frameBytes(identTag, nil) + frameBytes("t", make([]byte, 100))
	if s := a.Stats(); s.BytesSent != want || s.MessagesSent != 1 {
		t.Errorf("sender stats %+v, want %d bytes", s, want)
	}
	if s := b.Stats(); s.BytesReceived != want {
		t.Errorf("receiver stats %+v, want %d bytes", s, want)
	}
}

func TestUnknownPeerErrors(t *testing.T) {
	a, _ := newPair(t)
	if err := a.Send(99, "t", []byte("x")); err == nil {
		t.Error("send to unregistered node succeeded")
	}
}

func TestThreePeerShareExchange(t *testing.T) {
	// The deployment shape of DStress's initialization step (§3.6) over
	// real sockets: an owner XOR-splits a secret and distributes the
	// shares to its block members; reconstruction equals the secret, and
	// no single wire carried it.
	peers := make([]*Peer, 3)
	for i := range peers {
		p, err := Listen(network.NodeID(i+1), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		peers[i] = p
	}
	for i, p := range peers {
		for j, q := range peers {
			if i != j {
				p.Register(q.ID(), q.Addr())
			}
		}
	}

	const secret = uint64(0xbeef)
	shares := secretshare.SplitXOR(secret, 3, 16)
	// Owner (peer 0) keeps shares[0], ships the rest.
	for m := 1; m < 3; m++ {
		buf := []byte{byte(shares[m]), byte(shares[m] >> 8)}
		if err := peers[0].Send(network.NodeID(m+1), "init", buf); err != nil {
			t.Fatal(err)
		}
		if shares[m] == secret {
			t.Log("share happens to equal secret; harmless but noted")
		}
	}
	got := shares[0]
	for m := 1; m < 3; m++ {
		raw := mustRecv(t, peers[m], 1, "init")
		got ^= uint64(raw[0]) | uint64(raw[1])<<8
	}
	if got != secret {
		t.Errorf("reconstructed %#x, want %#x", got, secret)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, 7, "a/b/c", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	from, tag, payload, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if from != 7 || tag != "a/b/c" || string(payload) != "payload" {
		t.Errorf("frame round trip: %d %q %q", from, tag, payload)
	}
}

func TestFrameRejectsGarbage(t *testing.T) {
	// A frame claiming an absurd length must be rejected, not allocated.
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, _, _, err := readFrame(&buf); err == nil {
		t.Error("oversized frame accepted")
	}
	var short bytes.Buffer
	short.Write([]byte{0, 0, 0, 2, 0, 0})
	if _, _, _, err := readFrame(&short); err == nil {
		t.Error("undersized frame accepted")
	}
}

func BenchmarkTCPRoundTrip(b *testing.B) {
	a, err := Listen(1, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	c, err := Listen(2, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	defer c.Close()
	a.Register(2, c.Addr())
	c.Register(1, a.Addr())
	payload := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send(2, "b", payload); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Recv(context.Background(), 1, "b"); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRemotePeerDeathUnblocksRecv(t *testing.T) {
	a, b := newPair(t)
	// Establish a's inbound connection at b and queue one message.
	if err := a.Send(2, "queued", []byte("drains")); err != nil {
		t.Fatal(err)
	}
	if got := mustRecv(t, b, 1, "queued"); string(got) != "drains" {
		t.Fatalf("warm-up delivery got %q", got)
	}

	recvErr := make(chan error, 1)
	go func() {
		_, err := b.Recv(context.Background(), 1, "never-sent")
		recvErr <- err
	}()
	if err := a.Send(2, "final", []byte("in flight")); err != nil {
		t.Fatal(err)
	}
	a.Close() // node 1 dies

	// The blocked Recv must be released with an error, not hang.
	select {
	case err := <-recvErr:
		if err == nil {
			t.Error("Recv from a dead sender returned without error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv still blocked 5s after the sender died")
	}
	// Messages sent before the death still drain.
	if got, err := b.Recv(context.Background(), 1, "final"); err != nil || string(got) != "in flight" {
		t.Errorf("pre-death message lost: %q, %v", got, err)
	}
	// Future Recvs from the dead sender fail fast instead of blocking.
	if _, err := b.Recv(context.Background(), 1, "some-new-tag"); err == nil {
		t.Error("Recv on a fresh tag from a dead sender did not fail")
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	a, b := newPair(t)
	if err := a.Send(2, "t", []byte("x")); err != nil {
		t.Fatal(err)
	}
	mustRecv(t, b, 1, "t")
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, "t", []byte("after close")); err == nil {
		t.Error("Send on a closed peer succeeded")
	}
}

func TestDialerDeathBeforeFirstDataReleasesRecv(t *testing.T) {
	a, b := newPair(t)
	// Open the connection (greeting frame only — no data ever sent).
	if _, err := a.conn(2); err != nil {
		t.Fatal(err)
	}
	recvErr := make(chan error, 1)
	go func() {
		_, err := b.Recv(context.Background(), 1, "never")
		recvErr <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the Recv block and the greeting land
	a.Close()
	select {
	case err := <-recvErr:
		if err == nil {
			t.Error("Recv returned without error after the dialer died pre-data")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv still blocked after a pre-data dialer death")
	}
}
